//! Hierarchical span tracer stamped by the virtual clock.
//!
//! The flat [`crate::event::EventLog`] answers *what happened*; this module
//! answers *where the time went*. A [`SpanTracer`] collects nested spans on
//! named **tracks** — one per copy stream, one per compute engine, one per
//! serve job — and freezes into an immutable [`Trace`] that exports as a
//! Chrome/Perfetto `trace.json` (open in `ui.perfetto.dev`) or a compact
//! JSONL stream, and can answer busy/idle/overlap queries over arbitrary
//! windows (the Fig-8 utilization breakdown, per iteration).
//!
//! Timestamps are plain `u64` virtual nanoseconds supplied by the caller
//! (`ascetic-sim`'s clock, or the serve clock); nothing here reads the wall
//! clock, so a trace is byte-identical across runs and host thread counts.
//!
//! Nesting is enforced at record time: on each track, `begin`/`end` follow
//! a stack discipline, children must lie inside their parent, and siblings
//! may not overlap. Violations return a [`TraceError`] carrying the
//! 1-based index of the offending operation, so a broken instrumentation
//! site is pointed at directly instead of producing a garbled trace.

use crate::json;

/// Category for arbitration/queueing gaps. Spans with this category render
/// in the trace but are *excluded* from busy-time accounting — a stream
/// waiting for the PCIe link is idle time, not work.
pub const CAT_WAIT: &str = "wait";

/// Handle to a named track inside one tracer (index into its track table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(usize);

impl TrackId {
    /// Position of the track in [`Trace::tracks`] / [`SpanTracer::tracks`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// What went wrong while recording spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// `end` with no open span on the track.
    EndWithoutBegin,
    /// `end` before the innermost open span's start (or before its last
    /// closed child's end — closing there would orphan the child).
    EndBeforeStart {
        /// Requested end instant.
        at: u64,
        /// Earliest legal end instant.
        min: u64,
    },
    /// `begin` (or `complete`) earlier than allowed: a child must start
    /// inside its parent and after the previous sibling ended.
    BeginBeforeFrontier {
        /// Requested start instant.
        at: u64,
        /// Earliest legal start instant.
        min: u64,
    },
    /// `complete` with `end < start`.
    NegativeSpan {
        /// Requested start instant.
        start: u64,
        /// Requested end instant.
        end: u64,
    },
    /// `finish` while a span was still open (its `begin` op is reported).
    UnclosedSpan,
}

/// A span-nesting violation, pinned to the 1-based index of the recording
/// operation (`begin`/`end`/`complete` each count as one operation) that
/// caused it — the "line number" of the broken instrumentation site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based index of the offending operation.
    pub op: u64,
    /// Track the operation targeted.
    pub track: String,
    /// Violation detail.
    pub kind: TraceErrorKind,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace op {} on track \"{}\": ", self.op, self.track)?;
        match &self.kind {
            TraceErrorKind::EndWithoutBegin => write!(f, "end without begin"),
            TraceErrorKind::EndBeforeStart { at, min } => {
                write!(f, "end at {at} before earliest legal end {min}")
            }
            TraceErrorKind::BeginBeforeFrontier { at, min } => {
                write!(f, "begin at {at} before frontier {min}")
            }
            TraceErrorKind::NegativeSpan { start, end } => {
                write!(f, "span ends ({end}) before it starts ({start})")
            }
            TraceErrorKind::UnclosedSpan => write!(f, "span still open at finish"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One closed span in a finished [`Trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedSpan {
    /// Owning track (index into [`Trace::tracks`]).
    pub track: usize,
    /// Human-readable label.
    pub name: String,
    /// Category tag (`"dma"`, `"kernel"`, `"phase"`, [`CAT_WAIT`], …).
    pub cat: String,
    /// Start instant, virtual ns.
    pub start_ns: u64,
    /// End instant, virtual ns (`end_ns >= start_ns`).
    pub end_ns: u64,
    /// Nesting depth (0 = top level on its track).
    pub depth: u32,
}

impl TracedSpan {
    /// Span length in virtual ns.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// One still-open span on a track's stack.
#[derive(Clone, Debug)]
struct Open {
    name: String,
    cat: String,
    start_ns: u64,
    /// End of the last closed child; the earliest instant the next child
    /// may begin at, and the earliest instant this span may end at.
    child_frontier: u64,
    /// 1-based op index of the `begin` that opened this span.
    op: u64,
}

/// Per-track mutable state while recording.
#[derive(Clone, Debug, Default)]
struct TrackState {
    stack: Vec<Open>,
    /// End of the last closed top-level span (root sibling frontier).
    root_frontier: u64,
}

/// Collects spans on named tracks; [`SpanTracer::finish`] freezes it into
/// a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct SpanTracer {
    names: Vec<String>,
    state: Vec<TrackState>,
    spans: Vec<TracedSpan>,
    ops: u64,
}

impl SpanTracer {
    /// An empty tracer with no tracks.
    pub fn new() -> Self {
        SpanTracer::default()
    }

    /// Intern a track by name: returns the existing id if `name` is
    /// already a track, otherwise appends a new one. Track order is
    /// creation order (deterministic — recording happens on the single
    /// orchestration thread).
    pub fn track(&mut self, name: &str) -> TrackId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return TrackId(i);
        }
        self.names.push(name.to_string());
        self.state.push(TrackState::default());
        TrackId(self.names.len() - 1)
    }

    /// Track names in creation order.
    pub fn tracks(&self) -> &[String] {
        &self.names
    }

    /// Number of closed spans so far.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    fn err(&self, track: TrackId, kind: TraceErrorKind) -> TraceError {
        TraceError {
            op: self.ops,
            track: self.names[track.0].clone(),
            kind,
        }
    }

    /// Open a span on `track` at instant `t_ns`. Fails if `t_ns` is
    /// earlier than the innermost open span's child frontier (children
    /// must start inside their parent and after the previous sibling).
    pub fn begin(
        &mut self,
        track: TrackId,
        t_ns: u64,
        name: &str,
        cat: &str,
    ) -> Result<(), TraceError> {
        self.ops += 1;
        let st = &self.state[track.0];
        let min = match st.stack.last() {
            Some(parent) => parent.child_frontier,
            None => st.root_frontier,
        };
        if t_ns < min {
            return Err(self.err(track, TraceErrorKind::BeginBeforeFrontier { at: t_ns, min }));
        }
        let op = self.ops;
        self.state[track.0].stack.push(Open {
            name: name.to_string(),
            cat: cat.to_string(),
            start_ns: t_ns,
            child_frontier: t_ns,
            op,
        });
        Ok(())
    }

    /// Close the innermost open span on `track` at instant `t_ns`.
    pub fn end(&mut self, track: TrackId, t_ns: u64) -> Result<(), TraceError> {
        self.ops += 1;
        let st = &self.state[track.0];
        let Some(top) = st.stack.last() else {
            return Err(self.err(track, TraceErrorKind::EndWithoutBegin));
        };
        let min = top.child_frontier.max(top.start_ns);
        if t_ns < min {
            return Err(self.err(track, TraceErrorKind::EndBeforeStart { at: t_ns, min }));
        }
        let st = &mut self.state[track.0];
        let depth = (st.stack.len() - 1) as u32;
        let top = st.stack.pop().expect("checked non-empty");
        match st.stack.last_mut() {
            Some(parent) => parent.child_frontier = t_ns,
            None => st.root_frontier = t_ns,
        }
        self.spans.push(TracedSpan {
            track: track.0,
            name: top.name,
            cat: top.cat,
            start_ns: top.start_ns,
            end_ns: t_ns,
            depth,
        });
        Ok(())
    }

    /// Record an already-closed span `[start_ns, end_ns]`, nesting under
    /// the innermost open span on `track` (one operation, one error site).
    pub fn complete(
        &mut self,
        track: TrackId,
        start_ns: u64,
        end_ns: u64,
        name: &str,
        cat: &str,
    ) -> Result<(), TraceError> {
        self.ops += 1;
        if end_ns < start_ns {
            return Err(self.err(
                track,
                TraceErrorKind::NegativeSpan {
                    start: start_ns,
                    end: end_ns,
                },
            ));
        }
        let st = &self.state[track.0];
        let min = match st.stack.last() {
            Some(parent) => parent.child_frontier,
            None => st.root_frontier,
        };
        if start_ns < min {
            return Err(self.err(
                track,
                TraceErrorKind::BeginBeforeFrontier { at: start_ns, min },
            ));
        }
        let st = &mut self.state[track.0];
        let depth = st.stack.len() as u32;
        match st.stack.last_mut() {
            Some(parent) => parent.child_frontier = end_ns,
            None => st.root_frontier = end_ns,
        }
        self.spans.push(TracedSpan {
            track: track.0,
            name: name.to_string(),
            cat: cat.to_string(),
            start_ns,
            end_ns,
            depth,
        });
        Ok(())
    }

    /// Freeze into an immutable [`Trace`]. Fails (pointing at the earliest
    /// offending `begin`) if any span is still open.
    pub fn finish(self) -> Result<Trace, TraceError> {
        let mut unclosed: Option<(u64, usize)> = None;
        for (i, st) in self.state.iter().enumerate() {
            for open in &st.stack {
                if unclosed.map(|(op, _)| open.op < op).unwrap_or(true) {
                    unclosed = Some((open.op, i));
                }
            }
        }
        if let Some((op, track)) = unclosed {
            return Err(TraceError {
                op,
                track: self.names[track].clone(),
                kind: TraceErrorKind::UnclosedSpan,
            });
        }
        let mut spans = self.spans;
        // Stable sort: per track in time order, parents before children at
        // equal starts. Insertion order breaks remaining ties stably.
        spans.sort_by_key(|s| (s.track, s.start_ns, s.depth));
        Ok(Trace {
            tracks: self.names,
            spans,
        })
    }
}

/// A finished, immutable span trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    tracks: Vec<String>,
    /// Sorted by `(track, start_ns, depth)`, stable.
    spans: Vec<TracedSpan>,
}

impl Trace {
    /// Track names; [`TracedSpan::track`] indexes into this.
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// All spans, sorted by `(track, start_ns, depth)`.
    pub fn spans(&self) -> &[TracedSpan] {
        &self.spans
    }

    /// Index of the track named `name`, if present.
    pub fn track_index(&self, name: &str) -> Option<usize> {
        self.tracks.iter().position(|n| n == name)
    }

    /// Spans on one track, in time order.
    pub fn track_spans(&self, track: usize) -> impl Iterator<Item = &TracedSpan> {
        self.spans.iter().filter(move |s| s.track == track)
    }

    /// Latest end instant across all spans (0 for an empty trace).
    pub fn horizon_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0)
    }

    /// Merge `other` into this trace, prefixing every incoming track name
    /// with `prefix` (e.g. `"dev1/"`). The fleet layer uses this to fold N
    /// per-device traces — all stamped by the same virtual clock — into
    /// one Perfetto file with `dev0/GPU`, `dev1/GPU`, … tracks. A prefixed
    /// name that already exists merges onto the existing track; span
    /// sort order (`(track, start_ns, depth)`) is restored afterwards.
    pub fn merge_prefixed(&mut self, other: &Trace, prefix: &str) {
        let remap: Vec<usize> = other
            .tracks
            .iter()
            .map(|name| {
                let full = format!("{prefix}{name}");
                self.track_index(&full).unwrap_or_else(|| {
                    self.tracks.push(full);
                    self.tracks.len() - 1
                })
            })
            .collect();
        self.spans.extend(other.spans.iter().map(|s| TracedSpan {
            track: remap[s.track],
            ..s.clone()
        }));
        self.spans
            .sort_by_key(|s| (s.track, s.start_ns, s.depth, s.end_ns));
    }

    /// Top-level (depth 0) work intervals of `track` — the busy intervals
    /// used by utilization queries. [`CAT_WAIT`] spans are skipped: a
    /// stream stalled on link arbitration is idle, not busy. Intervals are
    /// non-overlapping and sorted (guaranteed by the recording rules).
    fn busy_intervals(&self, track: usize) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.spans.iter().filter_map(move |s| {
            (s.track == track && s.depth == 0 && s.cat != CAT_WAIT && s.end_ns > s.start_ns)
                .then_some((s.start_ns, s.end_ns))
        })
    }

    /// Busy nanoseconds of `track` inside the window `[w0, w1)`.
    pub fn busy_ns(&self, track: usize, w0: u64, w1: u64) -> u64 {
        self.busy_intervals(track)
            .map(|(s, e)| clip(s, e, w0, w1))
            .sum()
    }

    /// Busy nanoseconds of the *union* of several tracks inside
    /// `[w0, w1)` — e.g. all copy streams together = PCIe link busy.
    pub fn busy_union_ns(&self, tracks: &[usize], w0: u64, w1: u64) -> u64 {
        let mut iv: Vec<(u64, u64)> = tracks
            .iter()
            .flat_map(|&t| self.busy_intervals(t))
            .map(|(s, e)| (s.max(w0), e.min(w1)))
            .filter(|&(s, e)| s < e)
            .collect();
        iv.sort_unstable();
        merge_intervals(iv).iter().map(|(s, e)| e - s).sum()
    }

    /// Nanoseconds inside `[w0, w1)` where both `a`-union and `b`-union
    /// are busy simultaneously — the transfer/compute *overlap* the paper
    /// optimizes for (Figure 5).
    pub fn overlap_ns(&self, a: &[usize], b: &[usize], w0: u64, w1: u64) -> u64 {
        let collect = |tracks: &[usize]| -> Vec<(u64, u64)> {
            let mut iv: Vec<(u64, u64)> = tracks
                .iter()
                .flat_map(|&t| self.busy_intervals(t))
                .map(|(s, e)| (s.max(w0), e.min(w1)))
                .filter(|&(s, e)| s < e)
                .collect();
            iv.sort_unstable();
            merge_intervals(iv)
        };
        let ia = collect(a);
        let ib = collect(b);
        let (mut i, mut j, mut total) = (0, 0, 0u64);
        while i < ia.len() && j < ib.len() {
            let s = ia[i].0.max(ib[j].0);
            let e = ia[i].1.min(ib[j].1);
            if s < e {
                total += e - s;
            }
            if ia[i].1 <= ib[j].1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// The `k` longest spans, ties broken by earlier start, lower track,
    /// shallower depth (deterministic).
    pub fn top_spans(&self, k: usize) -> Vec<&TracedSpan> {
        let mut all: Vec<&TracedSpan> = self.spans.iter().collect();
        all.sort_by_key(|s| (std::cmp::Reverse(s.dur_ns()), s.start_ns, s.track, s.depth));
        all.truncate(k);
        all
    }

    /// Export as a Chrome/Perfetto trace (JSON array of events, one per
    /// line): per-track `thread_name` metadata followed by `ph:"X"`
    /// complete events with microsecond `ts`/`dur` at nanosecond
    /// precision. `schema_version` is stamped in a metadata event so
    /// consumers can detect drift. Open the file in `ui.perfetto.dev` or
    /// `chrome://tracing`.
    pub fn to_perfetto_json(&self, schema_version: u32) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 96);
        out.push_str("[\n");
        out.push_str(&format!(
            "{{\"name\":\"ascetic_schema\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"schema_version\":{schema_version}}}}}"
        ));
        for (i, name) in self.tracks.iter().enumerate() {
            out.push_str(",\n");
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":",
                i + 1
            ));
            json::string_into(name, &mut out);
            out.push_str("}}");
        }
        for s in &self.spans {
            out.push_str(",\n{\"name\":");
            json::string_into(&s.name, &mut out);
            out.push_str(",\"cat\":");
            json::string_into(&s.cat, &mut out);
            out.push_str(&format!(
                ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                s.track + 1,
                us(s.start_ns),
                us(s.dur_ns())
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// Export as compact JSONL: a meta line (`kind`, `schema_version`,
    /// track table, span count), then one object per span in
    /// `(track, start, depth)` order. This is the form
    /// [`Trace::from_jsonl`] and `ascetic trace summarize` consume.
    pub fn to_jsonl(&self, schema_version: u32) -> String {
        let mut out = String::with_capacity(96 + self.spans.len() * 80);
        out.push_str(&format!(
            "{{\"kind\":\"trace_meta\",\"schema_version\":{schema_version},\"tracks\":["
        ));
        for (i, name) in self.tracks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::string_into(name, &mut out);
        }
        out.push_str(&format!("],\"spans\":{}}}\n", self.spans.len()));
        for s in &self.spans {
            out.push_str(&format!("{{\"track\":{},\"name\":", s.track));
            json::string_into(&s.name, &mut out);
            out.push_str(",\"cat\":");
            json::string_into(&s.cat, &mut out);
            out.push_str(&format!(
                ",\"start_ns\":{},\"dur_ns\":{},\"depth\":{}}}\n",
                s.start_ns,
                s.dur_ns(),
                s.depth
            ));
        }
        out
    }

    /// Parse the JSONL form back into a trace. Returns the schema version
    /// from the meta line alongside the trace; fails with a line-numbered
    /// message on malformed input.
    pub fn from_jsonl(text: &str) -> Result<(Trace, u32), String> {
        let mut lines = text.lines().enumerate();
        let (_, meta) = lines
            .next()
            .ok_or_else(|| "trace line 1: empty input".to_string())?;
        json::validate(meta).map_err(|e| format!("trace line 1: {e}"))?;
        if !meta.starts_with("{\"kind\":\"trace_meta\"") {
            return Err("trace line 1: missing trace_meta header".to_string());
        }
        let schema_version = field_u64(meta, "schema_version")
            .ok_or_else(|| "trace line 1: missing schema_version".to_string())?
            as u32;
        let tracks = meta_tracks(meta).ok_or_else(|| "trace line 1: bad tracks".to_string())?;
        let mut spans = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let lineno = i + 1;
            json::validate(line).map_err(|e| format!("trace line {lineno}: {e}"))?;
            let bad = || format!("trace line {lineno}: missing span field");
            let track = field_u64(line, "track").ok_or_else(bad)? as usize;
            if track >= tracks.len() {
                return Err(format!("trace line {lineno}: track {track} out of range"));
            }
            let start_ns = field_u64(line, "start_ns").ok_or_else(bad)?;
            let dur_ns = field_u64(line, "dur_ns").ok_or_else(bad)?;
            let depth = field_u64(line, "depth").ok_or_else(bad)? as u32;
            spans.push(TracedSpan {
                track,
                name: field_str(line, "name").ok_or_else(bad)?,
                cat: field_str(line, "cat").ok_or_else(bad)?,
                start_ns,
                end_ns: start_ns + dur_ns,
                depth,
            });
        }
        spans.sort_by_key(|s| (s.track, s.start_ns, s.depth));
        Ok((Trace { tracks, spans }, schema_version))
    }
}

/// Clip `[s, e)` to `[w0, w1)` and return the remaining length.
fn clip(s: u64, e: u64, w0: u64, w1: u64) -> u64 {
    let s = s.max(w0);
    let e = e.min(w1);
    e.saturating_sub(s)
}

/// Merge sorted intervals into a disjoint cover.
fn merge_intervals(iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Nanoseconds rendered as microseconds with 3 decimal places (the
/// resolution Chrome's trace viewer expects), exactly.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Extract an unsigned integer field `"key":123` from a flat JSON object
/// line we emitted ourselves (no nested objects between keys).
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract a string field `"key":"..."` (JSON-unescaped) from a flat
/// object line we emitted ourselves.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    unescape_prefix(&line[at..])
}

/// Unescape a JSON string up to its closing quote.
fn unescape_prefix(s: &str) -> Option<String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Parse the `"tracks":[...]` array from the meta line.
fn meta_tracks(meta: &str) -> Option<Vec<String>> {
    let at = meta.find("\"tracks\":[")? + "\"tracks\":[".len();
    let mut rest = &meta[at..];
    let mut tracks = Vec::new();
    loop {
        match rest.chars().next()? {
            ']' => return Some(tracks),
            ',' => rest = &rest[1..],
            '"' => {
                let name = unescape_prefix(&rest[1..])?;
                // Skip past the escaped representation: re-escape to find
                // the consumed length deterministically.
                let consumed = 1 + json::escape(&name).len() + 1;
                rest = &rest[consumed..];
                tracks.push(name);
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer_with(ops: &[(&str, u64, u64, &str)]) -> Trace {
        let mut t = SpanTracer::new();
        for &(track, s, e, name) in ops {
            let id = t.track(track);
            t.complete(id, s, e, name, "test").unwrap();
        }
        t.finish().unwrap()
    }

    #[test]
    fn begin_end_nest_and_export() {
        let mut t = SpanTracer::new();
        let a = t.track("engine");
        t.begin(a, 0, "outer", "phase").unwrap();
        t.complete(a, 10, 20, "child", "kernel").unwrap();
        t.begin(a, 30, "grand", "kernel").unwrap();
        t.end(a, 40).unwrap();
        t.end(a, 50).unwrap();
        let trace = t.finish().unwrap();
        assert_eq!(trace.tracks(), &["engine".to_string()]);
        let depths: Vec<u32> = trace.spans().iter().map(|s| s.depth).collect();
        assert_eq!(depths, [0, 1, 1]);
        let json = trace.to_perfetto_json(3);
        crate::json::validate(&json).expect("perfetto json parses");
        assert!(json.contains("\"schema_version\":3"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ts\":0.010")); // 10 ns = 0.010 µs
    }

    #[test]
    fn errors_carry_op_index() {
        let mut t = SpanTracer::new();
        let a = t.track("x");
        t.begin(a, 5, "s", "c").unwrap(); // op 1
        let err = t.end(a, 3).unwrap_err(); // op 2
        assert_eq!(err.op, 2);
        assert_eq!(err.track, "x");
        assert!(matches!(
            err.kind,
            TraceErrorKind::EndBeforeStart { at: 3, min: 5 }
        ));

        let mut t = SpanTracer::new();
        let a = t.track("x");
        let err = t.end(a, 0).unwrap_err(); // op 1: nothing open
        assert_eq!(err.op, 1);
        assert_eq!(err.kind, TraceErrorKind::EndWithoutBegin);

        let mut t = SpanTracer::new();
        let a = t.track("x");
        t.complete(a, 0, 10, "s1", "c").unwrap(); // op 1
        let err = t.complete(a, 5, 8, "s2", "c").unwrap_err(); // op 2 overlaps
        assert_eq!(err.op, 2);
        assert!(matches!(
            err.kind,
            TraceErrorKind::BeginBeforeFrontier { at: 5, min: 10 }
        ));

        let mut t = SpanTracer::new();
        let a = t.track("x");
        t.begin(a, 0, "open", "c").unwrap(); // op 1, never closed
        let err = t.finish().unwrap_err();
        assert_eq!(err.op, 1);
        assert_eq!(err.kind, TraceErrorKind::UnclosedSpan);
    }

    #[test]
    fn end_cannot_orphan_children() {
        let mut t = SpanTracer::new();
        let a = t.track("x");
        t.begin(a, 0, "outer", "c").unwrap();
        t.complete(a, 2, 8, "child", "c").unwrap();
        let err = t.end(a, 6).unwrap_err(); // child ends at 8
        assert!(matches!(
            err.kind,
            TraceErrorKind::EndBeforeStart { at: 6, min: 8 }
        ));
        t.end(a, 8).unwrap();
        t.finish().unwrap();
    }

    #[test]
    fn utilization_busy_union_overlap() {
        let trace = tracer_with(&[
            ("copy0", 0, 10, "dma a"),
            ("copy0", 20, 30, "dma b"),
            ("copy1", 5, 25, "prefetch"),
            ("compute", 8, 28, "kernel"),
        ]);
        let c0 = trace.track_index("copy0").unwrap();
        let c1 = trace.track_index("copy1").unwrap();
        let k = trace.track_index("compute").unwrap();
        assert_eq!(trace.busy_ns(c0, 0, 30), 20);
        assert_eq!(trace.busy_ns(c0, 5, 25), 10);
        // Union of copy streams: [0,10) ∪ [5,25) ∪ [20,30) = [0,30).
        assert_eq!(trace.busy_union_ns(&[c0, c1], 0, 30), 30);
        // Overlap of link and compute: [0,30) ∩ [8,28) = 20.
        assert_eq!(trace.overlap_ns(&[c0, c1], &[k], 0, 30), 20);
        assert_eq!(trace.horizon_ns(), 30);
    }

    #[test]
    fn wait_spans_render_but_do_not_count_as_busy() {
        let mut t = SpanTracer::new();
        let a = t.track("copy1");
        t.complete(a, 0, 10, "arbitration", CAT_WAIT).unwrap();
        t.complete(a, 10, 30, "dma", "dma").unwrap();
        let trace = t.finish().unwrap();
        assert_eq!(trace.busy_ns(0, 0, 30), 20);
        assert!(trace.to_perfetto_json(3).contains("arbitration"));
    }

    #[test]
    fn top_spans_are_deterministic() {
        let trace = tracer_with(&[("a", 0, 10, "s1"), ("a", 10, 30, "s2"), ("b", 0, 20, "s3")]);
        let top: Vec<&str> = trace.top_spans(2).iter().map(|s| s.name.as_str()).collect();
        assert_eq!(top, ["s3", "s2"]); // equal durations: earlier start wins
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = tracer_with(&[
            ("copy \"0\"", 0, 10, "dma\nweird"),
            ("compute", 5, 9, "kernel"),
        ]);
        let jsonl = trace.to_jsonl(3);
        for line in jsonl.lines() {
            crate::json::validate(line).expect("every jsonl line parses");
        }
        let (back, ver) = Trace::from_jsonl(&jsonl).unwrap();
        assert_eq!(ver, 3);
        assert_eq!(back, trace);
    }

    #[test]
    fn from_jsonl_rejects_garbage_with_line_numbers() {
        assert!(Trace::from_jsonl("").unwrap_err().contains("line 1"));
        assert!(Trace::from_jsonl("{\"kind\":\"nope\"}")
            .unwrap_err()
            .contains("line 1"));
        let good = tracer_with(&[("t", 0, 5, "s")]).to_jsonl(3);
        let bad = format!("{good}{{\"track\":9,\"name\":\"x\",\"cat\":\"c\",\"start_ns\":0,\"dur_ns\":1,\"depth\":0}}\n");
        assert!(Trace::from_jsonl(&bad)
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn empty_trace_exports_validate() {
        let trace = SpanTracer::new().finish().unwrap();
        crate::json::validate(&trace.to_perfetto_json(3)).unwrap();
        let (back, _) = Trace::from_jsonl(&trace.to_jsonl(3)).unwrap();
        assert_eq!(back, trace);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Begin { track: u8, t: u64 },
        End { track: u8, t: u64 },
        Complete { track: u8, s: u64, d: u64 },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..3, 0u64..1000).prop_map(|(track, t)| Op::Begin { track, t }),
            (0u8..3, 0u64..1000).prop_map(|(track, t)| Op::End { track, t }),
            (0u8..3, 0u64..1000, 0u64..100).prop_map(|(track, s, d)| Op::Complete { track, s, d }),
        ]
    }

    /// The forest invariants a finished trace must satisfy on each track:
    /// spans sorted, children strictly inside parents, siblings disjoint.
    fn assert_well_formed(trace: &Trace) {
        for track in 0..trace.tracks().len() {
            // Stack replay: a span at depth d must be contained in the
            // current open chain of depth d-1.
            let mut stack: Vec<(u64, u64)> = Vec::new();
            for s in trace.track_spans(track) {
                stack.truncate(s.depth as usize);
                if let Some(&(ps, pe)) = stack.last() {
                    assert!(ps <= s.start_ns && s.end_ns <= pe, "child escapes parent");
                }
                assert!(s.start_ns <= s.end_ns);
                stack.push((s.start_ns, s.end_ns));
            }
            // Depth-0 spans are disjoint and ordered.
            let mut last_end = 0;
            for s in trace.track_spans(track).filter(|s| s.depth == 0) {
                assert!(s.start_ns >= last_end, "top-level spans overlap");
                last_end = s.end_ns;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// Arbitrary interleavings of begin/end/complete either build a
        /// well-formed forest or fail with the index of the bad operation.
        #[test]
        fn interleavings_forest_or_line_numbered_error(ops in proptest::collection::vec(arb_op(), 0..40)) {
            let mut tracer = SpanTracer::new();
            let mut applied: u64 = 0;
            let mut failed_at: Option<u64> = None;
            for op in &ops {
                applied += 1;
                let r = match *op {
                    Op::Begin { track, t } => {
                        let id = tracer.track(&format!("t{track}"));
                        tracer.begin(id, t, "span", "c")
                    }
                    Op::End { track, t } => {
                        let id = tracer.track(&format!("t{track}"));
                        tracer.end(id, t)
                    }
                    Op::Complete { track, s, d } => {
                        let id = tracer.track(&format!("t{track}"));
                        tracer.complete(id, s, s + d, "span", "c")
                    }
                };
                if let Err(e) = r {
                    // The error is pinned to exactly the op that failed.
                    prop_assert_eq!(e.op, applied);
                    failed_at = Some(applied);
                    break;
                }
            }
            match tracer.finish() {
                Ok(trace) => assert_well_formed(&trace),
                Err(e) => {
                    // Only unclosed spans can fail finish, and the op index
                    // points inside the applied prefix.
                    prop_assert_eq!(e.kind, TraceErrorKind::UnclosedSpan);
                    prop_assert!(e.op <= failed_at.unwrap_or(applied));
                }
            }
        }

        /// Whatever survives recording round-trips through JSONL.
        #[test]
        fn surviving_traces_round_trip(ops in proptest::collection::vec(arb_op(), 0..40)) {
            let mut tracer = SpanTracer::new();
            for op in &ops {
                let ok = match *op {
                    Op::Begin { track, t } => {
                        let id = tracer.track(&format!("t{track}"));
                        tracer.begin(id, t, "span", "c").is_ok()
                    }
                    Op::End { track, t } => {
                        let id = tracer.track(&format!("t{track}"));
                        tracer.end(id, t).is_ok()
                    }
                    Op::Complete { track, s, d } => {
                        let id = tracer.track(&format!("t{track}"));
                        tracer.complete(id, s, s + d, "span", "c").is_ok()
                    }
                };
                if !ok {
                    break;
                }
            }
            if let Ok(trace) = tracer.finish() {
                let (back, _) = Trace::from_jsonl(&trace.to_jsonl(3)).unwrap();
                prop_assert_eq!(back, trace);
            }
        }
    }
}
