//! Property tests for the telemetry primitives: bucket boundaries,
//! merge associativity, and escaping always yielding valid JSON.

use ascetic_obs::json;
use ascetic_obs::{Histogram, Registry};
use proptest::prelude::*;

proptest! {
    /// Every value lands in a bucket whose inclusive range contains it.
    #[test]
    fn bucket_index_matches_bucket_range(v in any::<u64>()) {
        let i = Histogram::bucket_index(v);
        let (lo, hi) = Histogram::bucket_range(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo},{hi}]");
    }

    /// Bucket ranges tile the u64 domain: each bucket starts right after
    /// the previous one ends.
    #[test]
    fn bucket_ranges_are_contiguous(i in 1usize..65) {
        let (_, prev_hi) = Histogram::bucket_range(i - 1);
        let (lo, hi) = Histogram::bucket_range(i);
        prop_assert_eq!(lo, prev_hi + 1);
        prop_assert!(lo <= hi);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): merge is associative, so sharded
    /// collection composes in any grouping.
    #[test]
    fn histogram_merge_is_associative(
        xs in prop::collection::vec(any::<u64>(), 0..32),
        ys in prop::collection::vec(any::<u64>(), 0..32),
        zs in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let h = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let (a, b, c) = (h(&xs), h(&ys), h(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// merge then diff recovers the second operand exactly.
    #[test]
    fn histogram_diff_inverts_merge(
        xs in prop::collection::vec(any::<u64>(), 0..32),
        ys in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let h = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let (a, b) = (h(&xs), h(&ys));
        let mut merged = a.clone();
        merged.merge(&b);
        // Saturating sum is the only lossy step; skip the astronomically
        // unlikely overflow case so the property stays exact.
        prop_assume!(a.sum().checked_add(b.sum()).is_some());
        prop_assert_eq!(merged.diff(&a), b);
    }

    /// Escaping any string produces a parseable JSON string document.
    #[test]
    fn escaped_string_always_validates(s in "\\PC*") {
        let doc = format!("\"{}\"", json::escape(&s));
        prop_assert!(json::validate(&doc).is_ok(), "escape({s:?}) -> invalid JSON");
    }

    /// Snapshot JSON stays valid for arbitrary label/metric content,
    /// including hostile names needing escapes.
    #[test]
    fn snapshot_json_always_validates(
        label in "\\PC{0,24}",
        c in any::<u64>(),
        samples in prop::collection::vec(any::<u64>(), 0..16),
    ) {
        let mut r = Registry::new();
        r.set_label("dataset", &label);
        r.counter_add("c", c);
        for v in samples {
            r.observe("h", v);
        }
        let j = r.snapshot().to_json();
        prop_assert!(json::validate(&j).is_ok(), "invalid snapshot JSON: {j}");
    }

    /// Registry merge agrees with observing everything in one registry.
    #[test]
    fn registry_merge_matches_single_stream(
        xs in prop::collection::vec(1u64..1_000_000, 0..24),
        split in 0usize..25,
    ) {
        let split = split.min(xs.len());
        let mut left = Registry::new();
        let mut right = Registry::new();
        let mut whole = Registry::new();
        for (i, &v) in xs.iter().enumerate() {
            let r = if i < split { &mut left } else { &mut right };
            r.counter_add("bytes", v);
            r.observe("sizes", v);
            whole.counter_add("bytes", v);
            whole.observe("sizes", v);
        }
        left.merge(&right);
        prop_assert_eq!(left.snapshot(), whole.snapshot());
    }
}
