//! The Unified Virtual Memory baseline (paper §4.4).
//!
//! Edges stay in host memory behind a UVM mapping; the GPU kernel touches
//! them directly and the driver migrates 64 KiB pages on demand with LRU
//! residency. The paper's analysis identifies three costs this module
//! reproduces: (1) page-granularity amplification of sparse accesses,
//! (2) LRU thrashing because the cross-iteration reuse distance exceeds
//! device memory, and (3) per-fault servicing overhead stalling the
//! kernel.
//!
//! Fault time is charged on the COMPUTE engine (a faulting kernel stalls);
//! migrated bytes are accounted as H2D traffic. An optional prefetch mode
//! (`cudaMemAdvise`-style bulk hints, which the paper's tuned baseline
//! uses) migrates each iteration's page set at bulk bandwidth instead of
//! fault-by-fault.

use ascetic_algos::{ops, EdgeSlice, VertexProgram};
use ascetic_graph::Csr;
use ascetic_obs::{Event, DEFAULT_EVENT_CAPACITY};
use ascetic_par::{parallel_for, AtomicBitmap};
use ascetic_sim::{AccessTracer, DeviceConfig, Engine, Gpu, SimTime, Uvm};

use ascetic_core::engine::finish_report;
use ascetic_core::report::{Breakdown, IterReport, RunReport};
use ascetic_core::system::{
    edge_budget_bytes, reserve_vertex_arrays, OutOfCoreSystem, PrepareError, Prepared,
};

/// The UVM baseline system.
pub struct UvmSystem {
    /// Device configuration.
    pub device: DeviceConfig,
    /// Use bulk prefetch hints instead of pure demand faulting.
    pub prefetch: bool,
    /// Record engine spans for Chrome-trace export.
    pub tracing: bool,
    /// Record a structured event log on the report (comparable with
    /// Ascetic's stream; includes per-page faults and evictions).
    pub events: bool,
}

impl UvmSystem {
    /// Demand-paging UVM on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        UvmSystem {
            device,
            prefetch: false,
            tracing: false,
            events: false,
        }
    }

    /// Enable Chrome-trace span recording.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enable structured event logging.
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }

    /// Enable `cudaMemPrefetchAsync`-style bulk hints.
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Run with an access tracer attached (used to regenerate Figure 2's
    /// chunk-access patterns). `trace_chunk_bytes` sets the chunk
    /// granularity of the trace.
    pub fn run_traced<P: VertexProgram>(
        &self,
        g: &Csr,
        prog: &P,
        tracer: &mut AccessTracer,
        trace_chunk_bytes: u64,
    ) -> RunReport {
        self.run_inner(g, prog, Some((tracer, trace_chunk_bytes)))
    }

    fn run_inner<P: VertexProgram>(
        &self,
        g: &Csr,
        prog: &P,
        mut trace: Option<(&mut AccessTracer, u64)>,
    ) -> RunReport {
        assert_eq!(g.is_weighted(), prog.capabilities().weights);
        let n = g.num_vertices();
        let mut gpu = if self.tracing {
            Gpu::new_traced(self.device)
        } else {
            Gpu::new(self.device)
        };
        if self.events {
            gpu.obs.enable_events(DEFAULT_EVENT_CAPACITY);
        }
        let _vertex_slab = reserve_vertex_arrays(&mut gpu, g);
        let capacity = edge_budget_bytes(&gpu);
        let mut uvm = Uvm::new(self.device.uvm, capacity);
        let bpe = g.bytes_per_edge() as u64;

        let state = prog.new_state(g);
        let mut active = prog.initial_frontier(g);
        let mut breakdown = Breakdown::default();
        let mut per_iter = Vec::new();
        let mut iter_windows = Vec::new();
        let mut iter = 0u32;
        let mut phase = 0u32;

        while iter < prog.max_iterations() {
            if active.is_all_zero() {
                match ops::phase_transition(prog, phase, g, &state) {
                    Some(f) => {
                        active = f;
                        phase += 1;
                    }
                    None => break,
                }
            }
            let iter_start = gpu.sync();
            gpu.obs.record(iter_start.0, Event::IterStart { iter });
            ops::compute(prog, iter, &active, &state);
            let nodes = active.to_indices();
            let active_edges: u64 = nodes.iter().map(|&v| g.degree(v)).sum();
            let next = AtomicBitmap::new(n);
            let migrated_before = uvm.stats.migrated_bytes;
            let faults_before = uvm.stats.faults;
            let evictions_before = uvm.stats.evictions;

            // Page traffic: walk active vertices in id order (the GPU's
            // thread blocks sweep the frontier array, producing the
            // near-sequential chunk scan of Figure 2).
            let mut fault_ns = 0u64;
            let mut cursor_ns = 0u64; // approximate intra-iteration timestamps
            for &v in &nodes {
                let er = g.edge_range(v);
                if er.is_empty() {
                    continue;
                }
                let first_page = er.start * bpe / uvm.page_bytes();
                let last_page = (er.end * bpe - 1) / uvm.page_bytes();
                for p in first_page..=last_page {
                    let faults_b = uvm.stats.faults;
                    let evicts_b = uvm.stats.evictions;
                    let ns = if self.prefetch {
                        uvm.prefetch(p..p + 1)
                    } else {
                        uvm.touch(p)
                    };
                    fault_ns += ns;
                    if uvm.stats.faults > faults_b {
                        gpu.obs.registry.observe("uvm.fault_ns", ns);
                        gpu.obs.record(
                            iter_start.0 + fault_ns,
                            Event::UvmFault {
                                page: p,
                                dur_ns: ns,
                            },
                        );
                    }
                    if uvm.stats.evictions > evicts_b {
                        gpu.obs.record(
                            iter_start.0 + fault_ns,
                            Event::UvmEvict {
                                pages: uvm.stats.evictions - evicts_b,
                            },
                        );
                    }
                    if let Some((tracer, cb)) = trace.as_mut() {
                        let chunk = (p * uvm.page_bytes() / *cb) as u32;
                        tracer.record(SimTime(iter_start.0 + cursor_ns), chunk, iter, 1);
                        cursor_ns += gpu.config.kernel.edge_fs / 1_000_000 + 1;
                    }
                }
                cursor_ns += 1;
            }
            // Kernel with its fault stalls.
            let k_span = gpu.kernel_at(active_edges, nodes.len() as u64, iter_start);
            breakdown.ondemand_compute_ns += k_span.duration();
            let stall =
                gpu.timeline
                    .schedule_labeled(Engine::Compute, k_span.end, fault_ns, || {
                        format!("UVM fault stalls {fault_ns}ns")
                    });
            breakdown.transfer_ns += stall.duration();
            let migrated = uvm.stats.migrated_bytes - migrated_before;
            gpu.xfer.h2d_bytes += migrated;
            gpu.xfer.h2d_ops += uvm.stats.faults - faults_before; // one DMA per fault
            gpu.obs
                .registry
                .counter_add("uvm.faults", uvm.stats.faults - faults_before);
            gpu.obs
                .registry
                .counter_add("uvm.evictions", uvm.stats.evictions - evictions_before);

            // Execute on host data (the UVM mapping *is* host memory).
            let weights = g.weights();
            parallel_for(nodes.len(), |i| {
                let v = nodes[i];
                let er = g.edge_range(v);
                let (s, e) = (er.start as usize, er.end as usize);
                let slice = EdgeSlice::split(&g.targets()[s..e], weights.map(|w| &w[s..e]));
                ops::advance(prog, v, slice, &state, &next);
            });

            let iter_end = gpu.sync();
            gpu.obs.record(iter_end.0, Event::IterEnd { iter });
            per_iter.push(IterReport {
                active_vertices: nodes.len() as u64,
                active_edges,
                payload_bytes: migrated,
                time_ns: iter_end.since(iter_start),
                static_edges: 0,
                pull: false,
            });
            iter_windows.push((iter_start.0, iter_end.0));
            active = ops::filter(prog, next.snapshot(), &state);
            iter += 1;
        }

        finish_report(
            "UVM",
            prog.name(),
            iter,
            &mut gpu,
            0,
            0,
            0,
            breakdown,
            per_iter,
            iter_windows,
            prog.output(&state),
        )
    }
}

impl OutOfCoreSystem for UvmSystem {
    fn name(&self) -> &'static str {
        "UVM"
    }

    fn prepare(&self, g: &Csr) -> Result<Prepared, PrepareError> {
        Prepared::for_device(g, self.device.mem_bytes)
    }

    fn run<P: VertexProgram>(&self, g: &Csr, prog: &P) -> RunReport {
        self.run_inner(g, prog, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_algos::inmemory::run_in_memory;
    use ascetic_algos::{Bfs, Cc, PageRank, Sssp};
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};

    fn small_device(g: &Csr) -> DeviceConfig {
        let mut d = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
        // scale the page size down with the scaled graphs (64 KiB pages on
        // a ~100 KB dataset would hold everything in a couple of pages)
        d.uvm.page_bytes = 1024;
        d
    }

    #[test]
    fn bfs_matches_oracle() {
        let g = rmat_graph(&RmatConfig::new(10, 20_000, 5).undirected(true));
        let rep = UvmSystem::new(small_device(&g)).run(&g, &Bfs::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Bfs::new(0)).output);
    }

    #[test]
    fn cc_matches_oracle() {
        let g = uniform_graph(2_000, 14_000, true, 2);
        let rep = UvmSystem::new(small_device(&g)).run(&g, &Cc::new());
        assert_eq!(rep.output, run_in_memory(&g, &Cc::new()).output);
    }

    #[test]
    fn sssp_matches_oracle() {
        let g = weighted_variant(&uniform_graph(1_500, 10_000, false, 3));
        let rep = UvmSystem::new(small_device(&g)).run(&g, &Sssp::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Sssp::new(0)).output);
    }

    #[test]
    fn pr_matches_oracle() {
        let g = uniform_graph(1_500, 12_000, false, 4);
        let rep = UvmSystem::new(small_device(&g)).run(&g, &PageRank::new());
        assert_eq!(rep.output, run_in_memory(&g, &PageRank::new()).output);
    }

    #[test]
    fn page_amplification_on_sparse_frontiers() {
        // BFS frontiers are sparse, but whole pages migrate: traffic per
        // iteration far exceeds the active edge bytes (the paper's §2/§4.4
        // point about UVM).
        let g = uniform_graph(3_000, 24_000, false, 5);
        let rep = UvmSystem::new(small_device(&g)).run(&g, &PageRank::new());
        let active_bytes: u64 = rep.per_iter.iter().map(|i| i.active_edges * 4).sum();
        assert!(
            rep.xfer.h2d_bytes > active_bytes,
            "page granularity must amplify traffic: {} vs {}",
            rep.xfer.h2d_bytes,
            active_bytes
        );
    }

    #[test]
    fn thrashing_when_oversubscribed() {
        // PR touches nearly all pages every iteration with reuse distance
        // > capacity: migrations per iteration approach the dataset size.
        let g = uniform_graph(3_000, 24_000, false, 6);
        let rep = UvmSystem::new(small_device(&g)).run(&g, &PageRank::new());
        let early = &rep.per_iter[1]; // iteration 1: still nearly all active
        assert!(
            early.payload_bytes * 2 > g.edge_bytes(),
            "LRU must thrash: migrated {} of {}",
            early.payload_bytes,
            g.edge_bytes()
        );
    }

    #[test]
    fn prefetch_mode_is_faster_but_same_answer() {
        let g = uniform_graph(2_000, 16_000, false, 7);
        let demand = UvmSystem::new(small_device(&g)).run(&g, &PageRank::new());
        let pref = UvmSystem::new(small_device(&g))
            .with_prefetch(true)
            .run(&g, &PageRank::new());
        assert_eq!(demand.output, pref.output);
        assert!(pref.sim_time_ns < demand.sim_time_ns);
    }

    #[test]
    fn fault_counters_and_events_track_paging() {
        let g = uniform_graph(2_000, 16_000, false, 9);
        let rep = UvmSystem::new(small_device(&g))
            .with_events(true)
            .run(&g, &PageRank::new());
        let faults = rep.metrics.counter("uvm.faults").expect("faults counted");
        let evictions = rep
            .metrics
            .counter("uvm.evictions")
            .expect("evictions counted");
        assert!(faults > 0, "oversubscribed PR must fault");
        assert!(evictions > 0, "oversubscribed PR must evict");
        // one DMA op per fault: the counter agrees with the xfer stats
        assert_eq!(faults, rep.xfer.h2d_ops);
        let h = rep.metrics.histogram("uvm.fault_ns").expect("fault hist");
        assert_eq!(h.count(), faults, "one sample per fault");
        let events = rep.events.as_ref().expect("events enabled");
        assert!(events.iter().any(|e| e.event.kind() == "uvm_fault"));
        assert!(events.iter().any(|e| e.event.kind() == "uvm_evict"));
        assert_eq!(rep.metrics.label("system"), Some("UVM"));
    }

    #[test]
    fn tracer_records_sequential_scan() {
        let g = uniform_graph(2_000, 16_000, false, 8);
        let mut tracer = AccessTracer::new(64, 1);
        let chunk_bytes = (g.edge_bytes() / 64).max(1);
        let rep = UvmSystem::new(small_device(&g)).run_traced(
            &g,
            &PageRank::new(),
            &mut tracer,
            chunk_bytes,
        );
        assert!(rep.iterations > 1);
        // every chunk is touched (roughly uniform access, Figure 2d-f)
        let touched = tracer.counts().iter().filter(|&&c| c > 0).count();
        assert!(touched > 48, "touched {touched}/64 chunks");
    }
}
