#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-baselines — comparison systems
//!
//! The three systems the paper evaluates Ascetic against (§4.1):
//!
//! * [`pt`] — a **partition-based** system in the style of GraphReduce
//!   (the paper's "PT"): static vertex-range partitions sized to GPU
//!   memory, every partition containing an active vertex streamed through
//!   the device each iteration. Simple, but moves 10–200× the dataset
//!   (Table 5).
//! * [`subway`] — a faithful re-implementation of **Subway**'s three-phase
//!   loop: GPU subgraph identification → multi-threaded CPU gather of
//!   exactly the active edges → transfer → compute, with the phases
//!   strictly serialized (the paper measures 68 % GPU idle for BFS on
//!   friendster-konect as a consequence).
//! * [`uvm`] — a **Unified Virtual Memory** system: edges stay in host
//!   memory and fault in page-by-page with LRU residency (the paper's
//!   §4.4 comparison; optionally with bulk prefetch hints).
//!
//! All three implement [`ascetic_core::OutOfCoreSystem`] and produce the
//! same [`ascetic_core::RunReport`] as Ascetic, so every table and figure
//! compares like-for-like.

pub mod pt;
pub mod subway;
pub mod uvm;

pub use pt::PtSystem;
pub use subway::SubwaySystem;
pub use uvm::UvmSystem;
