#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-baselines — comparison systems
//!
//! The three systems the paper evaluates Ascetic against (§4.1):
//!
//! * [`pt`] — a **partition-based** system in the style of GraphReduce
//!   (the paper's "PT"): static vertex-range partitions sized to GPU
//!   memory, every partition containing an active vertex streamed through
//!   the device each iteration. Simple, but moves 10–200× the dataset
//!   (Table 5).
//! * [`subway`] — a faithful re-implementation of **Subway**'s three-phase
//!   loop: GPU subgraph identification → multi-threaded CPU gather of
//!   exactly the active edges → transfer → compute, with the phases
//!   strictly serialized (the paper measures 68 % GPU idle for BFS on
//!   friendster-konect as a consequence).
//! * [`uvm`] — a **Unified Virtual Memory** system: edges stay in host
//!   memory and fault in page-by-page with LRU residency (the paper's
//!   §4.4 comparison; optionally with bulk prefetch hints).
//!
//! All three implement [`ascetic_core::OutOfCoreSystem`] and produce the
//! same [`ascetic_core::RunReport`] as Ascetic, so every table and figure
//! compares like-for-like.

pub mod pt;
pub mod subway;
pub mod uvm;

pub use pt::PtSystem;
pub use subway::SubwaySystem;
pub use uvm::UvmSystem;

use ascetic_algos::VertexProgram;
use ascetic_core::system::{PrepareError, Prepared};
use ascetic_core::{AsceticSystem, OutOfCoreSystem, RunReport};
use ascetic_graph::Csr;

/// Any of the four evaluated systems behind one concrete type.
///
/// [`OutOfCoreSystem::run`] is generic over the program, so the trait is
/// not object-safe; this enum is the dispatch point the CLI and the bench
/// harness share instead of duplicating per-system match arms.
pub enum AnySystem {
    /// The Ascetic framework.
    Ascetic(AsceticSystem),
    /// The Subway baseline.
    Subway(SubwaySystem),
    /// The partition-based baseline.
    Pt(PtSystem),
    /// The UVM baseline.
    Uvm(UvmSystem),
}

impl OutOfCoreSystem for AnySystem {
    fn name(&self) -> &'static str {
        match self {
            AnySystem::Ascetic(s) => s.name(),
            AnySystem::Subway(s) => s.name(),
            AnySystem::Pt(s) => s.name(),
            AnySystem::Uvm(s) => s.name(),
        }
    }

    fn prepare(&self, g: &Csr) -> Result<Prepared, PrepareError> {
        match self {
            AnySystem::Ascetic(s) => s.prepare(g),
            AnySystem::Subway(s) => s.prepare(g),
            AnySystem::Pt(s) => s.prepare(g),
            AnySystem::Uvm(s) => s.prepare(g),
        }
    }

    fn run<P: VertexProgram>(&self, g: &Csr, prog: &P) -> RunReport {
        match self {
            AnySystem::Ascetic(s) => s.run(g, prog),
            AnySystem::Subway(s) => s.run(g, prog),
            AnySystem::Pt(s) => s.run(g, prog),
            AnySystem::Uvm(s) => s.run(g, prog),
        }
    }
}

impl From<AsceticSystem> for AnySystem {
    fn from(s: AsceticSystem) -> Self {
        AnySystem::Ascetic(s)
    }
}

impl From<SubwaySystem> for AnySystem {
    fn from(s: SubwaySystem) -> Self {
        AnySystem::Subway(s)
    }
}

impl From<PtSystem> for AnySystem {
    fn from(s: PtSystem) -> Self {
        AnySystem::Pt(s)
    }
}

impl From<UvmSystem> for AnySystem {
    fn from(s: UvmSystem) -> Self {
        AnySystem::Uvm(s)
    }
}

#[cfg(test)]
mod any_tests {
    use super::*;
    use ascetic_algos::Bfs;
    use ascetic_core::AsceticConfig;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_sim::DeviceConfig;

    #[test]
    fn any_system_delegates_byte_identically() {
        let g = uniform_graph(1_500, 12_000, false, 11);
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
        let direct = SubwaySystem::new(dev).run(&g, &Bfs::new(0));
        let any: AnySystem = SubwaySystem::new(dev).into();
        assert!(any.prepare(&g).is_ok());
        let via = any.run(&g, &Bfs::new(0));
        assert_eq!(any.name(), "Subway");
        assert_eq!(direct.output, via.output);
        assert_eq!(direct.xfer, via.xfer);
        assert_eq!(direct.sim_time_ns, via.sim_time_ns);

        let any = AnySystem::from(AsceticSystem::new(
            AsceticConfig::new(dev).with_chunk_bytes(1024),
        ));
        assert_eq!(any.name(), "Ascetic");
        assert!(any.prepare(&g).is_ok());
        assert!(any.run(&g, &Bfs::new(0)).prestore_bytes > 0);
    }

    #[test]
    fn prepare_rejects_oversized_vertex_sets() {
        let g = uniform_graph(100_000, 10, false, 1);
        let tiny = DeviceConfig::p100(1 << 10);
        for sys in [
            AnySystem::from(SubwaySystem::new(tiny)),
            AnySystem::from(PtSystem::new(tiny)),
            AnySystem::from(UvmSystem::new(tiny)),
        ] {
            assert!(
                matches!(sys.prepare(&g), Err(PrepareError::VerticesDontFit { .. })),
                "{} must refuse",
                sys.name()
            );
        }
    }
}
