//! The Subway baseline (Sabet, Zhao, Gupta — EuroSys '20).
//!
//! Subway minimizes transfer volume by shipping exactly the active
//! subgraph: each iteration (paper §2.2) (a) a GPU kernel identifies the
//! active vertices and lays out the compact subgraph structure, (b) CPU
//! threads fill it with the active vertices' edges from host memory,
//! (c) the buffer moves over PCIe, (d) the GPU processes it. The phases
//! are strictly sequential — "the CPU and GPU have to wait for each other
//! to complete the previous step" — which is the idle time Ascetic's
//! overlap attacks, and the subgraph is rebuilt from scratch every
//! iteration — the missing cross-iteration reuse Ascetic's static region
//! attacks.
//!
//! The gather/batching machinery is shared with Ascetic's On-demand Engine
//! (`ascetic_core::ondemand`), mirroring the paper: "We also exploit such
//! an approach to manage the On-demand Region in Ascetic."

use ascetic_algos::{ops, EdgeSlice, VertexProgram};
use ascetic_graph::compress::{encode_ranges, EncodeEntry};
use ascetic_graph::Csr;
use ascetic_obs::{Event, DEFAULT_EVENT_CAPACITY};
use ascetic_par::{parallel_for, AtomicBitmap};
use ascetic_sim::{DeviceConfig, Gpu};

use ascetic_core::codec::compress_wins;
use ascetic_core::engine::finish_report;
use ascetic_core::ondemand::{gather, plan_batches};
use ascetic_core::report::{Breakdown, IterReport, RunReport};
use ascetic_core::system::{
    edge_budget_bytes, reserve_vertex_arrays, OutOfCoreSystem, PrepareError, Prepared,
};
use ascetic_core::CompressionMode;

/// The Subway baseline system.
pub struct SubwaySystem {
    /// Device configuration.
    pub device: DeviceConfig,
    /// Record engine spans for Chrome-trace export.
    pub tracing: bool,
    /// Record a structured event log on the report (comparable with
    /// Ascetic's stream).
    pub events: bool,
    /// Ship subgraph payloads delta–varint encoded over the link
    /// (apples-to-apples with Ascetic's compressed transfer path).
    pub compression: CompressionMode,
}

impl SubwaySystem {
    /// A Subway instance on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        SubwaySystem {
            device,
            tracing: false,
            events: false,
            compression: CompressionMode::Off,
        }
    }

    /// Enable Chrome-trace span recording.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enable structured event logging.
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }

    /// Select the compressed transfer path for subgraph payloads.
    pub fn with_compression(mut self, mode: CompressionMode) -> Self {
        self.compression = mode;
        self
    }
}

impl OutOfCoreSystem for SubwaySystem {
    fn name(&self) -> &'static str {
        "Subway"
    }

    fn prepare(&self, g: &Csr) -> Result<Prepared, PrepareError> {
        Prepared::for_device(g, self.device.mem_bytes)
    }

    fn run<P: VertexProgram>(&self, g: &Csr, prog: &P) -> RunReport {
        assert_eq!(g.is_weighted(), prog.capabilities().weights);
        let n = g.num_vertices();
        let mut gpu = if self.tracing {
            Gpu::new_traced(self.device)
        } else {
            Gpu::new(self.device)
        };
        if self.events {
            gpu.obs.enable_events(DEFAULT_EVENT_CAPACITY);
        }
        let _vertex_slab = reserve_vertex_arrays(&mut gpu, g);
        assert!(
            edge_budget_bytes(&gpu) >= g.bytes_per_edge() as u64,
            "no room for the subgraph buffer"
        );
        let buffer_words = gpu.mem.available();
        let buffer = gpu.alloc(buffer_words).expect("subgraph buffer");
        let weighted = g.is_weighted();
        let compressible = self.compression != CompressionMode::Off && !weighted;
        let mut enc_buf: Vec<u8> = Vec::new();
        let mut enc_entries: Vec<EncodeEntry> = Vec::new();

        let state = prog.new_state(g);
        let mut active = prog.initial_frontier(g);
        let mut breakdown = Breakdown::default();
        let mut per_iter = Vec::new();
        let mut iter_windows = Vec::new();
        let mut iter = 0u32;
        let mut phase = 0u32;

        while iter < prog.max_iterations() {
            if active.is_all_zero() {
                match ops::phase_transition(prog, phase, g, &state) {
                    Some(f) => {
                        active = f;
                        phase += 1;
                    }
                    None => break,
                }
            }
            let iter_start = gpu.sync();
            gpu.obs.record(iter_start.0, Event::IterStart { iter });
            ops::compute(prog, iter, &active, &state);
            let nodes = active.to_indices();
            let active_edges: u64 = nodes.iter().map(|&v| g.degree(v)).sum();
            let next = AtomicBitmap::new(n);

            // (a) subgraph identification on the GPU: a scan + prefix sum
            // over all vertex metadata.
            let ident = gpu.kernel_at(0, n as u64, iter_start);
            breakdown.gen_map_ns += ident.duration();

            // (b)-(d) per batch, strictly chained.
            let mut payload = 0u64;
            let mut phase_end = ident.end;
            for entries in plan_batches(g, &nodes, buffer_words) {
                let batch = gather(g, entries);
                let g_span =
                    gpu.gather_at(batch.payload_bytes(), batch.entries.len() as u64, phase_end);
                breakdown.gather_ns += g_span.duration();

                let dst = buffer.slice(0, batch.words.len());
                // Subway rebuilds the subgraph every iteration, so the
                // crossover decides on the actual encoded size: the phases
                // are strictly sequential, which makes the pure link rule
                // exact (the compute engine is idle while the copy runs).
                let mut compressed = None;
                if compressible && batch.payload_bytes() > 0 {
                    enc_entries.clear();
                    enc_entries.extend(batch.entries.iter().map(|e| (e.vertex, e.edges.clone())));
                    enc_buf.clear();
                    let wire = encode_ranges(g, &enc_entries, &mut enc_buf) as u64;
                    let raw = batch.payload_bytes();
                    let ship = matches!(self.compression, CompressionMode::Always)
                        || compress_wins(&gpu.config.pcie, &gpu.config.decompress, raw, wire);
                    if ship {
                        let (copy, dec) =
                            gpu.h2d_compressed_at(dst, &batch.words, &enc_buf, g_span.end);
                        gpu.obs.registry.counter_add("compress.transfers", 1);
                        gpu.obs.registry.counter_add("compress.raw_bytes", raw);
                        gpu.obs.registry.counter_add("compress.wire_bytes", wire);
                        compressed = Some((copy.duration() + dec.duration(), dec.end));
                    } else {
                        gpu.obs.registry.counter_add("compress.declined", 1);
                    }
                }
                let (t_ns, payload_at) = compressed.unwrap_or_else(|| {
                    let t_span = gpu.h2d_at(dst, &batch.words, g_span.end);
                    (t_span.duration(), t_span.end)
                });
                gpu.xfer.h2d_bytes += batch.index_bytes();
                gpu.xfer.h2d_wire_bytes += batch.index_bytes();
                breakdown.transfer_ns += t_ns;
                payload += batch.payload_bytes() + batch.index_bytes();

                let k_span = gpu.kernel_at(batch.edges, batch.entries.len() as u64, payload_at);
                breakdown.ondemand_compute_ns += k_span.duration();
                phase_end = k_span.end; // CPU waits for the GPU before the next gather

                let mem = &gpu.mem;
                let batch_ref = &batch;
                parallel_for(batch_ref.entries.len(), |i| {
                    let e = &batch_ref.entries[i];
                    let words = &mem.words(dst)[batch_ref.entry_words(i)];
                    ops::advance(
                        prog,
                        e.vertex,
                        EdgeSlice::new(words, weighted),
                        &state,
                        &next,
                    );
                });
            }

            let iter_end = gpu.sync();
            gpu.obs.record(iter_end.0, Event::IterEnd { iter });
            per_iter.push(IterReport {
                active_vertices: nodes.len() as u64,
                active_edges,
                payload_bytes: payload,
                time_ns: iter_end.since(iter_start),
                static_edges: 0,
                pull: false,
            });
            iter_windows.push((iter_start.0, iter_end.0));
            active = ops::filter(prog, next.snapshot(), &state);
            iter += 1;
        }

        finish_report(
            "Subway",
            prog.name(),
            iter,
            &mut gpu,
            0,
            0,
            0,
            breakdown,
            per_iter,
            iter_windows,
            prog.output(&state),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_algos::inmemory::run_in_memory;
    use ascetic_algos::{Bfs, Cc, PageRank, Sssp};
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};

    fn small_device(g: &Csr) -> DeviceConfig {
        DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5)
    }

    #[test]
    fn bfs_matches_oracle() {
        let g = rmat_graph(&RmatConfig::new(10, 20_000, 5).undirected(true));
        let rep = SubwaySystem::new(small_device(&g)).run(&g, &Bfs::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Bfs::new(0)).output);
    }

    #[test]
    fn cc_matches_oracle() {
        let g = uniform_graph(2_000, 14_000, true, 2);
        let rep = SubwaySystem::new(small_device(&g)).run(&g, &Cc::new());
        assert_eq!(rep.output, run_in_memory(&g, &Cc::new()).output);
    }

    #[test]
    fn sssp_matches_oracle() {
        let g = weighted_variant(&uniform_graph(1_500, 10_000, false, 3));
        let rep = SubwaySystem::new(small_device(&g)).run(&g, &Sssp::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Sssp::new(0)).output);
    }

    #[test]
    fn pr_matches_oracle() {
        let g = uniform_graph(1_500, 12_000, false, 4);
        let rep = SubwaySystem::new(small_device(&g)).run(&g, &PageRank::new());
        assert_eq!(rep.output, run_in_memory(&g, &PageRank::new()).output);
    }

    #[test]
    fn ships_roughly_the_active_edges() {
        let g = uniform_graph(2_000, 16_000, false, 5);
        let rep = SubwaySystem::new(small_device(&g)).run(&g, &Bfs::new(0));
        let active_bytes: u64 = rep
            .per_iter
            .iter()
            .map(|i| i.active_edges * g.bytes_per_edge() as u64)
            .sum();
        // payload = active edges + small index overhead
        assert!(rep.xfer.h2d_bytes >= active_bytes);
        assert!(rep.xfer.h2d_bytes < active_bytes * 3 + 4096);
    }

    #[test]
    fn beats_pt_on_transfer_volume() {
        // BFS has sparse frontiers: PT still ships whole partitions while
        // Subway ships only the frontier's edges.
        let g = uniform_graph(3_000, 24_000, false, 6);
        let dev = small_device(&g);
        let pt = crate::pt::PtSystem::new(dev).run(&g, &Bfs::new(0));
        let sw = SubwaySystem::new(dev).run(&g, &Bfs::new(0));
        assert!(sw.xfer.h2d_bytes < pt.xfer.h2d_bytes / 2);
        // (time ordering is asserted at realistic scale in the
        // integration tests; at this micro scale fixed overheads dominate)
    }

    #[test]
    fn event_stream_is_comparable_with_ascetic() {
        let g = uniform_graph(2_000, 16_000, false, 8);
        let rep = SubwaySystem::new(small_device(&g))
            .with_events(true)
            .run(&g, &Bfs::new(0));
        let events = rep.events.as_ref().expect("events enabled");
        let starts = events
            .iter()
            .filter(|e| e.event.kind() == "iter_start")
            .count();
        let ends = events
            .iter()
            .filter(|e| e.event.kind() == "iter_end")
            .count();
        assert_eq!(starts as u32, rep.iterations);
        assert_eq!(ends as u32, rep.iterations);
        assert!(events.iter().any(|e| e.event.kind() == "dma"));
        assert_eq!(
            rep.metrics.counter("xfer.h2d_bytes"),
            Some(rep.xfer.h2d_bytes)
        );
        // off by default
        let quiet = SubwaySystem::new(small_device(&g)).run(&g, &Bfs::new(0));
        assert!(quiet.events.is_none());
    }

    #[test]
    fn compressed_subway_matches_oracle_and_saves_wire_bytes() {
        use ascetic_graph::generators::{web_graph, WebConfig};
        use ascetic_sim::DecompressModel;
        let g = web_graph(&WebConfig::new(4_000, 60_000, 3));
        let mut dev = small_device(&g);
        dev.decompress = DecompressModel {
            bandwidth_bps: 200_000_000_000,
            launch_ns: 1_000,
        };
        let raw = SubwaySystem::new(dev).run(&g, &Bfs::new(0));
        let comp = SubwaySystem::new(dev)
            .with_compression(ascetic_core::CompressionMode::Always)
            .run(&g, &Bfs::new(0));
        assert_eq!(raw.output, comp.output);
        assert_eq!(
            raw.xfer.h2d_bytes, comp.xfer.h2d_bytes,
            "same logical payload"
        );
        assert!(
            comp.xfer.h2d_wire_bytes < raw.xfer.h2d_wire_bytes,
            "encoded payloads must shrink the wire volume"
        );
        assert!(comp.metrics.counter("compress.transfers").unwrap_or(0) > 0);
    }

    #[test]
    fn serialized_phases_leave_gpu_idle() {
        // The §2.2 motivation: most of the makespan is CPU gather +
        // transfer, so the compute engine sits idle.
        let g = uniform_graph(2_500, 20_000, false, 7);
        let rep = SubwaySystem::new(small_device(&g)).run(&g, &Bfs::new(0));
        assert!(
            rep.gpu_idle_fraction() > 0.4,
            "idle {}",
            rep.gpu_idle_fraction()
        );
    }
}
