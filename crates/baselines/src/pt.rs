//! The partition-based baseline ("PT", GraphReduce-style).
//!
//! The graph's edge array is statically divided into contiguous
//! vertex-range partitions sized to the device's edge budget. Every
//! iteration, each partition containing at least one active vertex is
//! shipped to the device *in full* and a kernel processes the active
//! vertices inside it — the Figure 1 swap pattern. There is no
//! overlap: transfer and compute chain strictly (classic double-buffering
//! is deliberately absent, matching the paper's PT results where data
//! transfer dominates by 10–200×).

use ascetic_algos::{ops, EdgeSlice, VertexProgram};
use ascetic_graph::partition::partition_by_bytes;
use ascetic_graph::Csr;
use ascetic_obs::{Event, DEFAULT_EVENT_CAPACITY};
use ascetic_par::{parallel_for, AtomicBitmap};
use ascetic_sim::{DeviceConfig, Gpu};

use ascetic_core::engine::finish_report;
use ascetic_core::report::{Breakdown, IterReport, RunReport};
use ascetic_core::system::{
    edge_budget_bytes, reserve_vertex_arrays, OutOfCoreSystem, PrepareError, Prepared,
};

/// The PT baseline system.
pub struct PtSystem {
    /// Device configuration.
    pub device: DeviceConfig,
    /// Record engine spans for Chrome-trace export.
    pub tracing: bool,
    /// Record a structured event log on the report (comparable with
    /// Ascetic's stream).
    pub events: bool,
}

impl PtSystem {
    /// A PT instance on the given device.
    pub fn new(device: DeviceConfig) -> Self {
        PtSystem {
            device,
            tracing: false,
            events: false,
        }
    }

    /// Enable Chrome-trace span recording.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enable structured event logging.
    pub fn with_events(mut self, on: bool) -> Self {
        self.events = on;
        self
    }
}

impl OutOfCoreSystem for PtSystem {
    fn name(&self) -> &'static str {
        "PT"
    }

    fn prepare(&self, g: &Csr) -> Result<Prepared, PrepareError> {
        Prepared::for_device(g, self.device.mem_bytes)
    }

    fn run<P: VertexProgram>(&self, g: &Csr, prog: &P) -> RunReport {
        assert_eq!(g.is_weighted(), prog.capabilities().weights);
        let n = g.num_vertices();
        let mut gpu = if self.tracing {
            Gpu::new_traced(self.device)
        } else {
            Gpu::new(self.device)
        };
        if self.events {
            gpu.obs.enable_events(DEFAULT_EVENT_CAPACITY);
        }
        let _vertex_slab = reserve_vertex_arrays(&mut gpu, g);
        let budget = edge_budget_bytes(&gpu);
        assert!(budget >= g.bytes_per_edge() as u64, "no room for edge data");
        let parts = partition_by_bytes(g, budget);
        let buffer_words = gpu.mem.available();
        let buffer = gpu.alloc(buffer_words).expect("partition buffer");
        let wpe = g.words_per_edge();

        let state = prog.new_state(g);
        let mut active = prog.initial_frontier(g);
        let mut breakdown = Breakdown::default();
        let mut per_iter = Vec::new();
        let mut iter_windows = Vec::new();
        let mut staging: Vec<u32> = Vec::new();
        let mut iter = 0u32;
        let mut phase = 0u32;

        while iter < prog.max_iterations() {
            if active.is_all_zero() {
                match ops::phase_transition(prog, phase, g, &state) {
                    Some(f) => {
                        active = f;
                        phase += 1;
                    }
                    None => break,
                }
            }
            let iter_start = gpu.sync();
            gpu.obs.record(iter_start.0, Event::IterStart { iter });
            ops::compute(prog, iter, &active, &state);
            let next = AtomicBitmap::new(n);
            let mut payload = 0u64;
            let mut active_vertices = 0u64;
            let mut active_edges = 0u64;

            for p in &parts {
                let nodes: Vec<u32> = (p.vertices.start..p.vertices.end)
                    .filter(|&v| active.get(v as usize))
                    .collect();
                if nodes.is_empty() {
                    continue;
                }
                active_vertices += nodes.len() as u64;
                let edges: u64 = nodes.iter().map(|&v| g.degree(v)).sum();
                active_edges += edges;

                // Stream the partition payload through the buffer, possibly
                // in several slices for an oversized partition.
                let mut shipped = 0u64; // words already shipped of this partition
                let part_words = (p.num_edges() as usize) * wpe;
                while (shipped as usize) < part_words || part_words == 0 {
                    let len = (part_words - shipped as usize).min(buffer_words) / wpe * wpe;
                    if len == 0 {
                        break;
                    }
                    staging.clear();
                    let edge_lo = p.edges.start + shipped / wpe as u64;
                    let edge_hi = edge_lo + (len / wpe) as u64;
                    g.write_edge_words(edge_lo..edge_hi, &mut staging);
                    let dst = buffer.slice(0, staging.len());
                    // strict chain: transfer waits for the previous compute
                    let ready = gpu.timeline.now();
                    let t_span = gpu.h2d_at(dst, &staging, ready);
                    breakdown.transfer_ns += t_span.duration();
                    payload += (staging.len() * 4) as u64;

                    // GraphReduce-style kernel: the partition is processed
                    // in its entirety (every resident edge is scanned; the
                    // vertex-centric kernel has no compact frontier), which
                    // is the compute-side inefficiency of partition-based
                    // systems. Only active vertices produce pushes.
                    let slice_edges: u64 = edge_hi - edge_lo;
                    let slice_nodes: Vec<u32> = nodes
                        .iter()
                        .copied()
                        .filter(|&v| overlap_len(g.edge_range(v), edge_lo..edge_hi) > 0)
                        .collect();
                    let k_span = gpu.kernel_at(
                        slice_edges,
                        (p.vertices.end - p.vertices.start) as u64,
                        t_span.end,
                    );
                    breakdown.ondemand_compute_ns += k_span.duration();
                    if !slice_nodes.is_empty() {
                        let mem = &gpu.mem;
                        let weighted = g.is_weighted();
                        parallel_for(slice_nodes.len(), |i| {
                            let v = slice_nodes[i];
                            let er = g.edge_range(v);
                            let lo = er.start.max(edge_lo);
                            let hi = er.end.min(edge_hi);
                            let off = (lo - edge_lo) as usize * wpe;
                            let len_w = (hi - lo) as usize * wpe;
                            let words = &mem.words(dst)[off..off + len_w];
                            ops::advance(prog, v, EdgeSlice::new(words, weighted), &state, &next);
                        });
                    }
                    shipped += staging.len() as u64;
                    if part_words == 0 {
                        break;
                    }
                }
            }

            let iter_end = gpu.sync();
            gpu.obs.record(iter_end.0, Event::IterEnd { iter });
            per_iter.push(IterReport {
                active_vertices,
                active_edges,
                payload_bytes: payload,
                time_ns: iter_end.since(iter_start),
                static_edges: 0,
                pull: false,
            });
            iter_windows.push((iter_start.0, iter_end.0));
            active = ops::filter(prog, next.snapshot(), &state);
            iter += 1;
        }

        finish_report(
            "PT",
            prog.name(),
            iter,
            &mut gpu,
            0,
            0,
            0,
            breakdown,
            per_iter,
            iter_windows,
            prog.output(&state),
        )
    }
}

fn overlap_len(a: std::ops::Range<u64>, b: std::ops::Range<u64>) -> u64 {
    a.end.min(b.end).saturating_sub(a.start.max(b.start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascetic_algos::inmemory::run_in_memory;
    use ascetic_algos::{Bfs, Cc, PageRank, Sssp};
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::{rmat_graph, uniform_graph, RmatConfig};

    fn small_device(g: &Csr) -> DeviceConfig {
        DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5)
    }

    #[test]
    fn bfs_matches_oracle() {
        let g = rmat_graph(&RmatConfig::new(10, 20_000, 5).undirected(true));
        let rep = PtSystem::new(small_device(&g)).run(&g, &Bfs::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Bfs::new(0)).output);
    }

    #[test]
    fn cc_matches_oracle() {
        let g = uniform_graph(2_000, 14_000, true, 2);
        let rep = PtSystem::new(small_device(&g)).run(&g, &Cc::new());
        assert_eq!(rep.output, run_in_memory(&g, &Cc::new()).output);
    }

    #[test]
    fn sssp_matches_oracle() {
        let g = weighted_variant(&uniform_graph(1_500, 10_000, false, 3));
        let rep = PtSystem::new(small_device(&g)).run(&g, &Sssp::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Sssp::new(0)).output);
    }

    #[test]
    fn pr_matches_oracle() {
        let g = uniform_graph(1_500, 12_000, false, 4);
        let rep = PtSystem::new(small_device(&g)).run(&g, &PageRank::new());
        assert_eq!(rep.output, run_in_memory(&g, &PageRank::new()).output);
    }

    #[test]
    fn transfers_amplify_hugely() {
        // PT ships whole partitions for sparse frontiers: the volume must
        // exceed the dataset by a wide margin (paper Table 5: 10-200x).
        let g = uniform_graph(3_000, 24_000, false, 5);
        let rep = PtSystem::new(small_device(&g)).run(&g, &PageRank::new());
        assert!(
            rep.xfer.h2d_bytes > 5 * g.edge_bytes(),
            "amplification: {} vs dataset {}",
            rep.xfer.h2d_bytes,
            g.edge_bytes()
        );
    }

    #[test]
    fn gpu_mostly_idle() {
        let g = uniform_graph(2_000, 16_000, false, 6);
        let rep = PtSystem::new(small_device(&g)).run(&g, &Bfs::new(0));
        assert!(
            rep.gpu_idle_fraction() > 0.5,
            "idle {}",
            rep.gpu_idle_fraction()
        );
    }

    #[test]
    fn oversized_partition_streams_in_slices() {
        // one mega-hub vertex whose adjacency exceeds the device budget
        let mut b = ascetic_graph::GraphBuilder::new(30_000);
        for t in 1..30_000u32 {
            b.add_edge(0, t);
        }
        b.add_edge(1, 0);
        let g = b.build();
        // ~120 KB of edges; give the device ~24 KB of edge room
        let dev = DeviceConfig::p100(30_000 * 24 + 24 * 1024);
        let rep = PtSystem::new(dev).run(&g, &Bfs::new(0));
        assert_eq!(rep.output, run_in_memory(&g, &Bfs::new(0)).output);
    }
}
