//! Serve determinism: the same trace + policy + config must produce a
//! byte-identical serve report, across repeated runs and across host
//! thread counts. The virtual clock, the integer cost models and the
//! exact batched lanes make this possible; the serve JSON (schedule,
//! per-job times, output fingerprints, metrics) is the witness.

use ascetic_core::AsceticConfig;
use ascetic_graph::datasets::{Dataset, DatasetId};
use ascetic_graph::Csr;
use ascetic_par::set_num_threads;
use ascetic_serve::{serve, synthetic_mixed, Job, Policy, ServeConfig, ALL_POLICIES};
use ascetic_sim::DeviceConfig;

const SCALE: u64 = 30_000;

fn workload() -> (Csr, Csr, Vec<Job>) {
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = ds.graph.clone();
    let w = ds.weighted();
    // bursty mixed arrivals so batching, deferral and variant switching
    // all actually happen on the schedule under test
    let jobs = synthetic_mixed(24, g.num_vertices(), 11, 400_000, 3);
    (g, w, jobs)
}

fn cfg_for(g: &Csr) -> AsceticConfig {
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    AsceticConfig::new(dev).with_chunk_bytes(1024)
}

fn serve_json(policy: Policy, g: &Csr, w: &Csr, jobs: &[Job]) -> String {
    serve(&ServeConfig::new(cfg_for(g), policy), g, Some(w), jobs)
        .expect("serve")
        .to_json()
}

#[test]
fn repeated_serves_are_byte_identical() {
    let (g, w, jobs) = workload();
    for policy in ALL_POLICIES {
        let a = serve_json(policy, &g, &w, &jobs);
        let b = serve_json(policy, &g, &w, &jobs);
        assert_eq!(a, b, "{} serve report not reproducible", policy.name());
    }
}

#[test]
fn thread_count_does_not_change_any_policy_schedule() {
    let (g, w, jobs) = workload();
    for policy in ALL_POLICIES {
        set_num_threads(1);
        let serial = serve_json(policy, &g, &w, &jobs);
        set_num_threads(8);
        let parallel = serve_json(policy, &g, &w, &jobs);
        set_num_threads(0);
        assert_eq!(
            serial,
            parallel,
            "{} serve report depends on host thread count",
            policy.name()
        );
    }
}

#[test]
fn policies_agree_on_answers_but_not_necessarily_on_schedules() {
    let (g, w, jobs) = workload();
    let reports: Vec<_> = ALL_POLICIES
        .iter()
        .map(|&p| serve(&ServeConfig::new(cfg_for(&g), p), &g, Some(&w), &jobs).expect("serve"))
        .collect();
    for r in &reports[1..] {
        assert_eq!(r.jobs.len(), reports[0].jobs.len());
        for (a, b) in reports[0].jobs.iter().zip(&r.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                ascetic_serve::output_fingerprint(&a.output),
                ascetic_serve::output_fingerprint(&b.output),
                "policy {} changed job {}'s answer",
                r.policy,
                a.id
            );
        }
    }
}
