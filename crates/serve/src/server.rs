//! The serve loop: admission control, policy scheduling, session reuse
//! and query batching on a virtual clock.
//!
//! One simulated device serves a queue of jobs over one graph (and its
//! weighted variant, for SSSP). The scheduler keeps at most one live
//! [`AsceticSession`] — the device model — and decides, job by job:
//!
//! 1. **admission** — each job is checked against its program's
//!    capabilities first (whole-graph sweeps are not servable queries; a
//!    forced pull direction rejects push-only kinds with the typed
//!    [`AlgoError`](ascetic_algos::AlgoError) text), then jobs whose graph
//!    variant cannot be prepared on the device (vertex arrays don't fit,
//!    config invalid for the graph, edge budget below two chunks) are
//!    rejected with the [`PrepareError`](ascetic_core::PrepareError) text;
//!    rejected jobs never run, the rest of the workload still does;
//! 2. **scheduling** — among arrived jobs, [`Policy`] picks the next one;
//! 3. **batching** — arrived same-kind single-source jobs are folded into
//!    the pick (up to [`ServeConfig::max_batch`] lanes) and the whole
//!    batch runs as one multi-source pass;
//! 4. **residency** — if the live session already serves the right graph
//!    variant it is *reused*: the warmed static region and hotness table
//!    carry over and the run pays no prestore. A variant switch tears the
//!    session down and pays a fresh prestore — the cost residency-affinity
//!    scheduling exists to avoid.
//!
//! Time: the serve clock starts at 0 and advances by each run's simulated
//! duration; a job's queue wait is `start - submit`. Everything is
//! integer virtual time, so a trace + policy + config determines the
//! report byte-for-byte regardless of host thread count.
//!
//! **Fleet serving** ([`ServeConfig::with_devices`]): N identically
//! configured devices each carry their own `free_ns` clock and session.
//! Every decision is taken by the earliest-free device (lowest index on
//! ties) — skew self-corrects because a device stuck on a long batch
//! stops winning the argmin. Residency affinity scores candidates against
//! the deciding device's session, and a cold build checks its peers for a
//! warm session of the same variant: when the [`Interconnect`] can ship
//! that donor's static region faster than a host prestore, admission is
//! charged as the device-to-device replica instead. One device reproduces
//! the classic scheduler byte-for-byte.

use ascetic_algos::{AlgoOutput, MsBfsDistances, MsSsspDistances, ProgramOpts};
use ascetic_core::{AsceticConfig, AsceticSession, AsceticSystem, OutOfCoreSystem, Prepared};
use ascetic_graph::{Csr, GraphPatch, Mutation, PatchError, PatchableCsr};
use ascetic_obs::{Registry, SpanTracer};
use ascetic_par::Bitmap;
use ascetic_sim::{Interconnect, InterconnectConfig};

use crate::job::{Algo, Job};
use crate::policy::Policy;
use crate::report::{JobReport, RejectedJob, ServeReport};
use crate::trace::TraceMutation;

/// Serving-layer configuration on top of the device config.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Device + Ascetic knobs every session is built with.
    pub cfg: AsceticConfig,
    /// Scheduling policy.
    pub policy: Policy,
    /// Fold compatible single-source jobs into multi-source batches.
    pub batching: bool,
    /// Max lanes per batch (clamped to the MS-BFS mask width, 64).
    pub max_batch: usize,
    /// Devices in the fleet (1 = the classic single-device scheduler;
    /// the default).
    pub devices: usize,
    /// Fabric joining the fleet's devices: cold sessions replicate a warm
    /// peer's static region over it when that beats a host prestore.
    pub interconnect: InterconnectConfig,
}

impl ServeConfig {
    /// Serve `cfg` under `policy` with batching on (64 lanes), one device.
    pub fn new(cfg: AsceticConfig, policy: Policy) -> Self {
        ServeConfig {
            cfg,
            policy,
            batching: true,
            max_batch: ascetic_algos::MAX_BATCH_LANES,
            devices: 1,
            interconnect: InterconnectConfig::pcie(),
        }
    }

    /// Disable query batching (every job runs alone).
    pub fn without_batching(mut self) -> Self {
        self.batching = false;
        self
    }

    /// Spread the schedule across `devices` devices (earliest-free
    /// routing; ≥1).
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices.max(1);
        self
    }

    /// Use `ic` as the fleet fabric (NVLink peer links make static-region
    /// replication much cheaper than host staging).
    pub fn with_interconnect(mut self, ic: InterconnectConfig) -> Self {
        self.interconnect = ic;
        self
    }
}

/// One fleet device's scheduler state.
struct Device<'g> {
    /// Serve-clock instant the device next goes idle.
    free_ns: u64,
    /// The device's live session, if any.
    session: Option<(Variant, AsceticSession<'g>)>,
    /// How many mutation batches the live session's graph includes (its
    /// graph is `versions[epoch]` of the session's variant).
    epoch: usize,
}

/// Why a serve call could not start at all (per-job problems become
/// [`RejectedJob`]s instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The trace holds weighted jobs but no weighted graph was supplied.
    WeightedGraphMissing,
    /// A mutation batch could not be applied to a graph variant.
    Mutation {
        /// 0-based batch index in the schedule (batches are `at_ns`
        /// groups, in time order).
        batch: usize,
        /// The patch-store rejection.
        error: PatchError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::WeightedGraphMissing => {
                write!(
                    f,
                    "trace contains sssp jobs but no weighted graph was provided"
                )
            }
            ServeError::Mutation { batch, error } => {
                write!(f, "mutation batch {batch}: {error}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Which graph a job runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    Unweighted,
    Weighted,
}

fn variant_of(kind: Algo) -> Variant {
    if kind.weighted() {
        Variant::Weighted
    } else {
        Variant::Unweighted
    }
}

/// Number of registered algorithm kinds the cost model tracks.
const KINDS: usize = Algo::ALL.len();

/// Per-kind running-mean cost model for SJF: seeded from the graph's edge
/// volume (a whole-graph sweep costs more on a bigger edge array, PR the
/// most with its dense iterations), refined with every observed run, and
/// adjusted per job by the source vertex's degree — the same
/// degree-is-hotness signal the replacement server ranks chunks by.
struct CostModel {
    sum_ns: [u64; KINDS],
    runs: [u64; KINDS],
    prior: [u64; KINDS],
}

fn kind_index(kind: Algo) -> usize {
    Algo::ALL
        .iter()
        .position(|&a| a == kind)
        .expect("every Algo is registered")
}

impl CostModel {
    fn new(unweighted: &Csr, weighted: Option<&Csr>) -> CostModel {
        let eb = unweighted.edge_bytes();
        let ebw = weighted.map_or(eb * 2, |g| g.edge_bytes());
        // relative magnitudes only — SJF ranks, it does not predict.
        // Index order is Algo::ALL: the paper's four keep their seeds,
        // the extensions slot in by workload shape (traversal-like cheap,
        // sweep-like dear).
        let mut prior = [eb; KINDS];
        prior[kind_index(Algo::Sssp)] = ebw * 3;
        prior[kind_index(Algo::Cc)] = eb * 2;
        prior[kind_index(Algo::Pr)] = eb * 8;
        prior[kind_index(Algo::KCore)] = eb * 4;
        prior[kind_index(Algo::MsBfs)] = eb * 6;
        prior[kind_index(Algo::Closeness)] = eb * 6;
        prior[kind_index(Algo::Lp)] = eb * 4;
        prior[kind_index(Algo::Bc)] = eb * 3;
        CostModel {
            sum_ns: [0; KINDS],
            runs: [0; KINDS],
            prior,
        }
    }

    fn observe(&mut self, kind: Algo, run_ns: u64) {
        let i = kind_index(kind);
        self.sum_ns[i] += run_ns;
        self.runs[i] += 1;
    }

    fn estimate(&self, job: &Job, g: &Csr) -> u64 {
        let i = kind_index(job.kind);
        let base = self.sum_ns[i]
            .checked_div(self.runs[i])
            .unwrap_or(self.prior[i]);
        // a hub source seeds a fatter first frontier
        let degree_term = job
            .source
            .map_or(0, |s| g.degree(s) * g.bytes_per_edge() as u64);
        base + degree_term
    }
}

/// One graph variant's epoch sequence, borrowed: `versions[k]` is the
/// graph after the first `k` mutation batches; `patches[k]` turned
/// `versions[k]` into `versions[k + 1]`. A non-mutating serve passes a
/// single version and no patches.
#[derive(Clone, Copy)]
struct EpochSlices<'g> {
    versions: &'g [Csr],
    cscs: &'g [Csr],
    patches: &'g [GraphPatch],
}

impl<'g> EpochSlices<'g> {
    fn single(g: &'g Csr) -> EpochSlices<'g> {
        EpochSlices {
            versions: std::slice::from_ref(g),
            cscs: &[],
            patches: &[],
        }
    }
}

/// Owned epoch storage behind [`serve_mutating`]'s slices.
struct OwnedEpochs {
    versions: Vec<Csr>,
    cscs: Vec<Csr>,
    patches: Vec<GraphPatch>,
}

impl OwnedEpochs {
    fn slices(&self) -> EpochSlices<'_> {
        EpochSlices {
            versions: &self.versions,
            cscs: &self.cscs,
            patches: &self.patches,
        }
    }
}

/// Normalize a trace mutation's weight for one graph variant: dropped on
/// the unweighted graph, defaulted to 1 on the weighted one.
fn normalize_weight(m: Mutation, weighted: bool) -> Mutation {
    match m {
        Mutation::Insert { src, dst, weight } => Mutation::Insert {
            src,
            dst,
            weight: weighted.then(|| weight.unwrap_or(1)),
        },
        delete => delete,
    }
}

/// Run `batches` through a patch store over `g`, keeping every epoch.
fn materialize_variant(
    g: &Csr,
    batches: &[Vec<Mutation>],
    weighted: bool,
) -> Result<OwnedEpochs, ServeError> {
    let mut store = PatchableCsr::with_defaults(g, true);
    let mut versions = vec![store.to_csr()];
    let mut cscs = vec![store.to_csc().expect("mirror requested")];
    let mut patches = Vec::with_capacity(batches.len());
    for (i, batch) in batches.iter().enumerate() {
        let normalized: Vec<Mutation> = batch
            .iter()
            .map(|&m| normalize_weight(m, weighted))
            .collect();
        patches.push(
            store
                .apply(&normalized)
                .map_err(|error| ServeError::Mutation { batch: i, error })?,
        );
        versions.push(store.to_csr());
        cscs.push(store.to_csc().expect("mirror requested"));
    }
    Ok(OwnedEpochs {
        versions,
        cscs,
        patches,
    })
}

/// State the scheduler carries for one graph variant.
struct VariantState<'g> {
    epochs: EpochSlices<'g>,
    prepared: Prepared,
}

impl<'g> VariantState<'g> {
    fn at(&self, epoch: usize) -> &'g Csr {
        &self.epochs.versions[epoch]
    }
}

/// Serve `jobs` over `unweighted` (and `weighted`, required iff the trace
/// holds SSSP jobs) on one simulated device. Returns the full serve
/// report; per-job problems (inadmissible variants) surface inside it as
/// rejections, not errors.
pub fn serve<'g>(
    sc: &ServeConfig,
    unweighted: &'g Csr,
    weighted: Option<&'g Csr>,
    jobs: &[Job],
) -> Result<ServeReport, ServeError> {
    serve_impl(
        sc,
        EpochSlices::single(unweighted),
        weighted.map(EpochSlices::single),
        &[],
        jobs,
    )
}

/// Like [`serve`], but with a schedule of edge mutations interleaved on
/// the serve clock. Records sharing an `at_ns` form one atomic batch;
/// when a device's clock passes a batch boundary its live session is
/// *delta-patched in place* — resident chunks rewritten, hotness and
/// residency carried — rather than torn down and re-prestored, and every
/// job started at or after the boundary answers over the mutated graph.
/// Both graph variants are mutated in lockstep (insert weights default to
/// 1 on the weighted variant and are dropped on the unweighted one).
pub fn serve_mutating(
    sc: &ServeConfig,
    unweighted: &Csr,
    weighted: Option<&Csr>,
    jobs: &[Job],
    mutations: &[TraceMutation],
) -> Result<ServeReport, ServeError> {
    // Group the schedule into atomic batches by time stamp.
    let mut sorted: Vec<&TraceMutation> = mutations.iter().collect();
    sorted.sort_by_key(|m| m.at_ns);
    let mut boundaries: Vec<u64> = Vec::new();
    let mut batches: Vec<Vec<Mutation>> = Vec::new();
    for m in sorted {
        if boundaries.last() != Some(&m.at_ns) {
            boundaries.push(m.at_ns);
            batches.push(Vec::new());
        }
        batches.last_mut().expect("just pushed").push(m.mutation);
    }
    let un = materialize_variant(unweighted, &batches, false)?;
    let w = match weighted {
        Some(g) => Some(materialize_variant(g, &batches, true)?),
        None => None,
    };
    serve_impl(
        sc,
        un.slices(),
        w.as_ref().map(|e| e.slices()),
        &boundaries,
        jobs,
    )
}

fn serve_impl<'g>(
    sc: &ServeConfig,
    unweighted: EpochSlices<'g>,
    weighted: Option<EpochSlices<'g>>,
    boundaries: &[u64],
    jobs: &[Job],
) -> Result<ServeReport, ServeError> {
    if jobs.iter().any(|j| j.kind.weighted()) && weighted.is_none() {
        return Err(ServeError::WeightedGraphMissing);
    }
    let max_batch = sc.max_batch.clamp(1, ascetic_algos::MAX_BATCH_LANES);
    let mut reg = Registry::new();
    reg.set_label("layer", "serve");
    reg.set_label("policy", sc.policy.name());
    let devices = sc.devices.max(1);
    // Serve-clock span trace: one scheduler track per device (named
    // plain "scheduler" on the classic single device) plus one lifecycle
    // track per job (queued → admitted → running).
    let mut tracer = SpanTracer::new();
    let sched_tracks: Vec<_> = (0..devices)
        .map(|d| {
            if devices == 1 {
                tracer.track("scheduler")
            } else {
                tracer.track(&format!("dev{d}/scheduler"))
            }
        })
        .collect();

    // --- Admission. ---
    // Per-job capability checks first: kinds the serve layer does not
    // accept, and kinds the configuration rules out (forced pull on a
    // push-only program), are rejected here with a reason — never by a
    // panic mid-run.
    let mut rejected: Vec<RejectedJob> = Vec::new();
    let mut admitted: Vec<Job> = Vec::new();
    for job in jobs {
        if !job.kind.servable() {
            rejected.push(RejectedJob {
                id: job.id,
                algo: job.kind.name(),
                reason: format!(
                    "{} is a whole-graph batch sweep, not a servable query",
                    job.kind.name()
                ),
            });
            continue;
        }
        if let Err(e) = sc
            .cfg
            .validate_algo(job.kind.capabilities(), job.kind.display())
        {
            rejected.push(RejectedJob {
                id: job.id,
                algo: job.kind.name(),
                reason: e.to_string(),
            });
            continue;
        }
        admitted.push(*job);
    }
    // Then prepare each graph variant once (over its base epoch); reject
    // what cannot run.
    let mut pending: Vec<Job> = Vec::new();
    let mut states: [Option<VariantState<'g>>; 2] = [None, None];
    for (vi, eps) in [(0, Some(unweighted)), (1, weighted)] {
        let Some(eps) = eps else { continue };
        let g = &eps.versions[0];
        let sys = AsceticSystem::new(sc.cfg);
        match sys.prepare(g) {
            Ok(prepared) if prepared.edge_budget_bytes >= 2 * sc.cfg.chunk_bytes as u64 => {
                states[vi] = Some(VariantState {
                    epochs: eps,
                    prepared,
                });
            }
            Ok(prepared) => {
                let reason = format!(
                    "edge budget {} B below two {}-byte chunks",
                    prepared.edge_budget_bytes, sc.cfg.chunk_bytes
                );
                reject_variant(vi, &admitted, &reason, &mut rejected);
            }
            Err(e) => reject_variant(vi, &admitted, &e.to_string(), &mut rejected),
        }
    }
    for job in &admitted {
        let vi = variant_of(job.kind) as usize;
        if states[vi].is_some() {
            pending.push(*job);
        }
    }
    pending.sort_by_key(|j| (j.submit_ns, j.id));

    // --- The scheduling loop. ---
    let mut devs: Vec<Device<'g>> = (0..devices)
        .map(|_| Device {
            free_ns: 0,
            session: None,
            epoch: 0,
        })
        .collect();
    let mut ic = Interconnect::new(sc.interconnect, devices);
    let mut cost = CostModel::new(&unweighted.versions[0], weighted.map(|e| &e.versions[0]));
    let mut job_reports: Vec<JobReport> = Vec::new();
    let mut batch_seq = 0u32;
    let mut sessions_built = 0u32;
    let mut replications = 0u32;
    let mut replicated_bytes = 0u64;
    let mut batches = 0u32;
    let mut batched_jobs = 0u32;
    let mut ondemand_h2d_bytes = 0u64;
    let mut prestore_bytes = 0u64;
    let mut residency_hit_bytes = 0u64;
    let mut mutations_applied = 0u32;
    let mut mutation_wire_bytes = 0u64;
    let mut makespan_ns = 0u64;

    while !pending.is_empty() {
        // Earliest-free device takes the next decision (lowest index on
        // ties) — the fleet's rebalance-under-skew mechanism: a device
        // stuck on a long batch simply stops winning this argmin and the
        // queue drains through its idle peers.
        let d = (0..devs.len())
            .min_by_key(|&i| (devs[i].free_ns, i))
            .expect("at least one device");
        let now = devs[d].free_ns;
        // Mutation batches whose boundary this decision has passed: the
        // epoch every estimate, build and run at `now` must see.
        let cur_epoch = boundaries.iter().take_while(|&&b| b <= now).count();
        let arrived_until = {
            let arrived: Vec<usize> = (0..pending.len())
                .filter(|&i| pending[i].submit_ns <= now)
                .collect();
            if arrived.is_empty() {
                // idle device: jump to the next arrival
                devs[d].free_ns = pending.iter().map(|j| j.submit_ns).min().unwrap();
                continue;
            }
            arrived
        };

        // policy pick (pending is in canonical (submit, id) order, so the
        // first candidate wins every tie)
        let pick = match sc.policy {
            Policy::Fifo => arrived_until[0],
            Policy::Sjf => *arrived_until
                .iter()
                .min_by_key(|&&i| {
                    let j = &pending[i];
                    let g = states[variant_of(j.kind) as usize]
                        .as_ref()
                        .unwrap()
                        .at(cur_epoch);
                    cost.estimate(j, g)
                })
                .unwrap(),
            Policy::ResidencyAffinity => *arrived_until
                .iter()
                .min_by_key(|&&i| {
                    let j = &pending[i];
                    let g = states[variant_of(j.kind) as usize]
                        .as_ref()
                        .unwrap()
                        .at(cur_epoch);
                    // highest score against the deciding device's session
                    // wins; ties fall back to FIFO order
                    (std::cmp::Reverse(score_affinity(j, g, &devs[d].session)), i)
                })
                .unwrap(),
        };
        let picked = pending[pick];
        let variant = variant_of(picked.kind);
        let vi = variant as usize;
        let g = states[vi].as_ref().unwrap().at(cur_epoch);

        // fold arrived same-kind batchable jobs into the batch
        let mut batch_idx: Vec<usize> = vec![pick];
        if sc.batching && picked.kind.capabilities().batchable {
            for &i in &arrived_until {
                if i != pick && pending[i].kind == picked.kind && batch_idx.len() < max_batch {
                    batch_idx.push(i);
                }
            }
            batch_idx.sort_unstable(); // canonical lane order: (submit, id)
        }

        // session residency: reuse on a variant match, rebuild otherwise.
        // A reused session that is behind the mutation schedule is caught
        // up by splicing each passed batch into its resident chunks —
        // repaired, not rebuilt. A rebuild looks for a warm donor of the
        // same variant (at the same epoch) on another device first —
        // replicating its static region device-to-device can be far
        // cheaper than a fresh host prestore.
        let reuse = matches!(&devs[d].session, Some((v, _)) if *v == variant);
        let mut mutate_ns = 0u64;
        let mut replica_donor: Option<(usize, u64)> = None;
        if reuse {
            let vs = states[vi].as_ref().unwrap();
            let dev = &mut devs[d];
            let sess = &mut dev.session.as_mut().expect("reuse checked").1;
            while dev.epoch < cur_epoch {
                let k = dev.epoch;
                let pa = sess.apply_patch(
                    &vs.epochs.versions[k + 1],
                    Some(&vs.epochs.cscs[k + 1]),
                    &vs.epochs.patches[k],
                );
                mutate_ns += pa.patch_ns;
                mutations_applied += 1;
                mutation_wire_bytes += pa.wire_bytes;
                reg.counter_add("serve.mutations_applied", 1);
                reg.counter_add("serve.mutation_wire_bytes", pa.wire_bytes);
                dev.epoch += 1;
            }
        } else {
            replica_donor = devs
                .iter()
                .enumerate()
                .filter(|&(i, dev)| {
                    i != d
                        && dev.epoch == cur_epoch
                        && dev
                            .session
                            .as_ref()
                            .is_some_and(|(v, s)| *v == variant && s.runs() > 0)
                })
                .map(|(i, dev)| (i, dev.session.as_ref().unwrap().1.prestore_wire_bytes()))
                .next();
            // assigning drops the old device state, prestore re-paid
            let vs = states[vi].as_ref().unwrap();
            let session = if cur_epoch == 0 {
                AsceticSession::with_prepared(sc.cfg, g, &vs.prepared)
            } else {
                // a mid-stream build prestores the current epoch's graph;
                // the base-epoch geometry cache no longer describes it
                AsceticSession::new(sc.cfg, g)
            };
            devs[d].session = Some((variant, session));
            devs[d].epoch = cur_epoch;
            sessions_built += 1;
            reg.counter_add("serve.sessions_built", 1);
        }
        let sess = &mut devs[d].session.as_mut().unwrap().1;
        let warm = sess.runs() > 0;

        // the batch's run
        let sources: Vec<u32> = batch_idx
            .iter()
            .filter_map(|&i| pending[i].source)
            .collect();
        let report = match picked.kind {
            // batched single-source traversals run their multi-lane variant
            Algo::Bfs if sources.len() > 1 => sess.run(&MsBfsDistances::new(sources.clone())),
            Algo::Sssp if sources.len() > 1 => sess.run(&MsSsspDistances::new(sources.clone())),
            kind => {
                let opts = ProgramOpts::from_source(sources.first().copied().unwrap_or(0));
                sess.run(&kind.program(&opts))
            }
        };
        cost.observe(picked.kind, report.sim_time_ns);

        // Clock + serve-level accounting. A cold build with a warm donor
        // replicates the donor's (possibly encoded) static region over
        // the interconnect instead of re-paying the host prestore — but
        // only when the fabric actually wins, probed against the live
        // link frontiers so concurrent replicas queue honestly.
        let mut admission_ns = report.prestore_ns;
        let mut service_ns = report.sim_time_ns;
        if let Some((src, bytes)) = replica_donor {
            if report.prestore_ns > 0 && bytes > 0 {
                let mut probe = ic.clone();
                let (_, end) = probe.transfer(src, d, bytes, now);
                let repl_ns = end - now;
                if repl_ns < report.prestore_ns {
                    ic = probe;
                    admission_ns = repl_ns;
                    service_ns = report.sim_time_ns - report.prestore_ns + repl_ns;
                    replications += 1;
                    replicated_bytes += bytes;
                    reg.counter_add("serve.replications", 1);
                    reg.counter_add("serve.replicated_bytes", bytes);
                }
            }
        }
        if mutate_ns > 0 {
            tracer
                .complete(
                    sched_tracks[d],
                    now,
                    now + mutate_ns,
                    &format!("mutate to epoch {cur_epoch}"),
                    "mutate",
                )
                .expect("patches precede the run");
        }
        let start = now + mutate_ns;
        let finish = start + service_ns;
        devs[d].free_ns = finish;
        makespan_ns = makespan_ns.max(finish);
        tracer
            .complete(
                sched_tracks[d],
                start,
                finish,
                &format!("run {} x{}", picked.kind.name(), batch_idx.len()),
                "run",
            )
            .expect("scheduler runs are sequential per device");
        ondemand_h2d_bytes += report.xfer.h2d_bytes;
        prestore_bytes += report.prestore_bytes;
        if warm {
            // bytes a cold session would have shipped but the carried
            // residency served from device memory
            let hit: u64 = report
                .per_iter
                .iter()
                .map(|it| it.static_edges * g.bytes_per_edge() as u64)
                .sum();
            residency_hit_bytes += hit;
            reg.counter_add("serve.residency_hit_bytes", hit);
        }
        let batch_id = if batch_idx.len() > 1 {
            batches += 1;
            batched_jobs += batch_idx.len() as u32;
            reg.counter_add("serve.batches", 1);
            reg.counter_add("serve.batched_jobs", batch_idx.len() as u64);
            batch_seq += 1;
            Some(batch_seq - 1)
        } else {
            None
        };
        reg.observe("serve.batch_occupancy", batch_idx.len() as u64);
        reg.counter_add("serve.jobs", batch_idx.len() as u64);
        reg.counter_add("serve.ondemand_h2d_bytes", report.xfer.h2d_bytes);

        // per-job reports: each batch member gets the run's RunReport with
        // its own lane as the output. The latency decomposition comes from
        // the shared run: admission = the (re)build prestore (or the
        // replica transfer), H2D = link time on transfers + refreshes,
        // compute = kernel time.
        let h2d_ns = report.breakdown.transfer_ns + report.breakdown.update_ns;
        let compute_ns = report.breakdown.gen_map_ns
            + report.breakdown.static_compute_ns
            + report.breakdown.ondemand_compute_ns;
        for (lane, &i) in batch_idx.iter().enumerate() {
            let job = pending[i];
            let output = split_output(&report.output, lane, batch_idx.len());
            let queue_wait_ns = start - job.submit_ns;
            reg.observe("serve.queue_wait_ns", queue_wait_ns);
            let jt = tracer.track(&format!("job {}", job.id));
            tracer
                .begin(
                    jt,
                    job.submit_ns,
                    &format!("job {} ({})", job.id, job.kind.name()),
                    "job",
                )
                .expect("job ids are unique");
            tracer
                .complete(jt, job.submit_ns, start, "queued", "queue")
                .expect("a job queues before it starts");
            if admission_ns > 0 {
                tracer
                    .complete(jt, start, start + admission_ns, "admitted", "admission")
                    .expect("admission precedes the run");
            }
            let running = if batch_idx.len() > 1 {
                format!("running (batched x{})", batch_idx.len())
            } else {
                "running".to_string()
            };
            tracer
                .complete(jt, start + admission_ns, finish, &running, "run")
                .expect("the run closes the lifecycle");
            tracer.end(jt, finish).expect("job spans close at finish");
            let mut job_run = report.clone();
            job_run.output = output.clone();
            job_reports.push(JobReport {
                id: job.id,
                algo: job.kind.name(),
                device: d as u32,
                batch: batch_id,
                lanes: batch_idx.len() as u32,
                batch_folds: batch_idx.len() as u32 - 1,
                submit_ns: job.submit_ns,
                start_ns: start,
                finish_ns: finish,
                queue_wait_ns,
                admission_ns,
                h2d_ns,
                compute_ns,
                deadline_ns: job.deadline_ns,
                met_deadline: job.deadline_ns.map(|d| finish <= d),
                output,
                run: job_run,
            });
        }

        // remove the batch from the queue (descending so indices hold)
        for &i in batch_idx.iter().rev() {
            pending.remove(i);
        }
    }

    job_reports.sort_by_key(|r| r.id);
    rejected.sort_by_key(|r| r.id);
    reg.counter_add("serve.rejected", rejected.len() as u64);
    // device 0's arena at shutdown (the fleet devices are identically
    // configured, so one is representative)
    let occupancy = devs[0]
        .session
        .as_ref()
        .map(|(_, s)| s.occupancy())
        .unwrap_or_default();
    let total_queue_wait_ns = job_reports.iter().map(|r| r.queue_wait_ns).sum();
    Ok(ServeReport {
        policy: sc.policy.name(),
        devices: devices as u32,
        makespan_ns,
        total_queue_wait_ns,
        ondemand_h2d_bytes,
        prestore_bytes,
        residency_hit_bytes,
        batches,
        batched_jobs,
        sessions_built,
        replications,
        replicated_bytes,
        mutations_applied,
        mutation_wire_bytes,
        occupancy,
        metrics: reg.snapshot(),
        span_trace: Some(tracer.finish().expect("serve spans are complete")),
        jobs: job_reports,
        rejected,
    })
}

/// Residency score of a waiting job against the live session: bytes of
/// useful residency a schedule-now would enjoy. Zero when the session
/// would have to be rebuilt (wrong variant or none).
fn score_affinity(job: &Job, g: &Csr, session: &Option<(Variant, AsceticSession<'_>)>) -> u64 {
    let Some((v, sess)) = session else { return 0 };
    if *v != variant_of(job.kind) {
        return 0;
    }
    let base = sess.resident_bytes();
    match job.source {
        Some(s) => {
            let mut frontier = Bitmap::new(g.num_vertices());
            frontier.set(s as usize);
            base + sess.demand_overlap(&frontier).0
        }
        None => base,
    }
}

/// Pull one job's answer out of a (possibly batched) run output.
fn split_output(output: &AlgoOutput, lane: usize, lanes: usize) -> AlgoOutput {
    match output {
        AlgoOutput::MultiDistances(v) => {
            debug_assert_eq!(v.len(), lanes);
            AlgoOutput::Distances(v[lane].clone())
        }
        single => {
            debug_assert_eq!(lanes, 1);
            single.clone()
        }
    }
}

fn reject_variant(vi: usize, jobs: &[Job], reason: &str, rejected: &mut Vec<RejectedJob>) {
    for job in jobs {
        if variant_of(job.kind) as usize == vi {
            rejected.push(RejectedJob {
                id: job.id,
                algo: job.kind.name(),
                reason: reason.to_string(),
            });
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::output_fingerprint;
    use crate::trace::synthetic_mixed;
    use ascetic_core::CompressionMode;
    use ascetic_graph::datasets::weighted_variant;
    use ascetic_graph::generators::uniform_graph;
    use ascetic_sim::DeviceConfig;

    fn graphs() -> (Csr, Csr) {
        let g = uniform_graph(2_500, 20_000, false, 31);
        let w = weighted_variant(&g);
        (g, w)
    }

    fn cfg_for(g: &Csr) -> AsceticConfig {
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
        AsceticConfig::new(dev).with_chunk_bytes(1024)
    }

    fn bfs_job(id: u32, source: u32, submit_ns: u64) -> Job {
        Job {
            id,
            kind: Algo::Bfs,
            source: Some(source),
            submit_ns,
            deadline_ns: None,
        }
    }

    #[test]
    fn fifo_runs_jobs_in_arrival_order_and_answers_them() {
        let (g, _) = graphs();
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo).without_batching();
        let jobs = [
            bfs_job(0, 0, 0),
            bfs_job(1, 7, 0),
            Job {
                id: 2,
                kind: Algo::Cc,
                source: None,
                submit_ns: 0,
                deadline_ns: None,
            },
        ];
        let rep = serve(&sc, &g, None, &jobs).unwrap();
        assert_eq!(rep.jobs.len(), 3);
        assert!(rep.rejected.is_empty());
        assert_eq!(rep.sessions_built, 1, "one variant, one session");
        // arrival order: job 0 first, each later job starts when the
        // previous finishes
        assert_eq!(rep.jobs[0].start_ns, 0);
        assert_eq!(rep.jobs[1].start_ns, rep.jobs[0].finish_ns);
        assert_eq!(rep.jobs[2].start_ns, rep.jobs[1].finish_ns);
        assert_eq!(rep.makespan_ns, rep.jobs[2].finish_ns);
        // the answers are the engine's answers
        let mut solo = AsceticSession::new(sc.cfg, &g);
        let d0 = solo.run(&ascetic_algos::Bfs::new(0)).output;
        assert_eq!(
            output_fingerprint(&rep.jobs[0].output),
            output_fingerprint(&d0)
        );
        // only the first run paid the prestore; the rest rode the residency
        assert!(rep.jobs[0].run.prestore_bytes > 0);
        assert_eq!(rep.jobs[1].run.prestore_bytes, 0);
        assert!(rep.residency_hit_bytes > 0);
    }

    #[test]
    fn batched_jobs_match_individual_runs() {
        let (g, w) = graphs();
        let cfg = cfg_for(&g);
        let mut jobs: Vec<Job> = (0..6).map(|i| bfs_job(i, i * 97, 0)).collect();
        jobs.push(Job {
            id: 6,
            kind: Algo::Sssp,
            source: Some(3),
            submit_ns: 0,
            deadline_ns: None,
        });
        jobs.push(Job {
            id: 7,
            kind: Algo::Sssp,
            source: Some(44),
            submit_ns: 0,
            deadline_ns: None,
        });
        let batched = serve(&ServeConfig::new(cfg, Policy::Fifo), &g, Some(&w), &jobs).unwrap();
        let solo = serve(
            &ServeConfig::new(cfg, Policy::Fifo).without_batching(),
            &g,
            Some(&w),
            &jobs,
        )
        .unwrap();
        assert_eq!(batched.batches, 2, "one BFS batch, one SSSP batch");
        assert_eq!(batched.batched_jobs, 8);
        assert_eq!(solo.batches, 0);
        for (b, s) in batched.jobs.iter().zip(&solo.jobs) {
            assert_eq!(b.id, s.id);
            assert_eq!(
                output_fingerprint(&b.output),
                output_fingerprint(&s.output),
                "job {} batched answer differs from its solo answer",
                b.id
            );
        }
        assert!(
            batched.makespan_ns < solo.makespan_ns,
            "batching should beat serial execution ({} vs {} ns)",
            batched.makespan_ns,
            solo.makespan_ns
        );
    }

    #[test]
    fn residency_affinity_beats_fifo_on_a_mixed_trace() {
        let (g, w) = graphs();
        let cfg = cfg_for(&g);
        let jobs = synthetic_mixed(32, g.num_vertices(), 7, 0, 1);
        let fifo = serve(&ServeConfig::new(cfg, Policy::Fifo), &g, Some(&w), &jobs).unwrap();
        let ra = serve(
            &ServeConfig::new(cfg, Policy::ResidencyAffinity),
            &g,
            Some(&w),
            &jobs,
        )
        .unwrap();
        assert!(
            ra.sessions_built < fifo.sessions_built,
            "affinity groups variants: {} vs {} sessions",
            ra.sessions_built,
            fifo.sessions_built
        );
        assert!(ra.residency_hit_bytes > 0);
        assert!(
            ra.makespan_ns < fifo.makespan_ns,
            "fewer prestores should shorten the makespan ({} vs {} ns)",
            ra.makespan_ns,
            fifo.makespan_ns
        );
        assert!(ra.prestore_bytes < fifo.prestore_bytes);
        // identical answers regardless of schedule
        for (a, b) in ra.jobs.iter().zip(&fifo.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(output_fingerprint(&a.output), output_fingerprint(&b.output));
        }
    }

    #[test]
    fn inadmissible_variant_is_rejected_with_the_prepare_error() {
        let (g, w) = graphs();
        // Always-compress contradicts a weighted graph: SSSP jobs must be
        // turned away at admission while BFS still runs.
        let cfg = cfg_for(&g).with_compression(CompressionMode::Always);
        let jobs = [
            bfs_job(0, 0, 0),
            Job {
                id: 1,
                kind: Algo::Sssp,
                source: Some(5),
                submit_ns: 0,
                deadline_ns: None,
            },
        ];
        let rep = serve(&ServeConfig::new(cfg, Policy::Fifo), &g, Some(&w), &jobs).unwrap();
        assert_eq!(rep.jobs.len(), 1);
        assert_eq!(rep.jobs[0].id, 0);
        assert_eq!(rep.rejected.len(), 1);
        assert_eq!(rep.rejected[0].id, 1);
        assert!(
            rep.rejected[0].reason.contains("compress"),
            "reason should carry the prepare error: {}",
            rep.rejected[0].reason
        );
    }

    #[test]
    fn capability_misfits_are_rejected_per_job_at_admission() {
        let (g, _) = graphs();
        // Forced pull: LP is push-only, BFS has a pull operator — the LP
        // job is rejected with the AlgoError text, BFS still runs. A
        // whole-graph sweep kind is rejected as unservable.
        let cfg = cfg_for(&g).with_direction(ascetic_core::DirectionMode::Pull);
        let jobs = [
            bfs_job(0, 0, 0),
            Job {
                id: 1,
                kind: Algo::Lp,
                source: None,
                submit_ns: 0,
                deadline_ns: None,
            },
            Job {
                id: 2,
                kind: Algo::MsBfs,
                source: None,
                submit_ns: 0,
                deadline_ns: None,
            },
        ];
        let rep = serve(&ServeConfig::new(cfg, Policy::Fifo), &g, None, &jobs).unwrap();
        assert_eq!(rep.jobs.len(), 1);
        assert_eq!(rep.jobs[0].id, 0);
        assert_eq!(rep.rejected.len(), 2);
        assert_eq!(rep.rejected[0].id, 1);
        assert!(
            rep.rejected[0].reason.contains("push-only"),
            "reason should carry the pull mismatch: {}",
            rep.rejected[0].reason
        );
        assert_eq!(rep.rejected[1].id, 2);
        assert!(
            rep.rejected[1].reason.contains("not a servable query"),
            "{}",
            rep.rejected[1].reason
        );
    }

    #[test]
    fn deadlines_are_judged_against_finish_time() {
        let (g, _) = graphs();
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo);
        let jobs = [
            Job {
                id: 0,
                kind: Algo::Bfs,
                source: Some(0),
                submit_ns: 0,
                deadline_ns: Some(1),
            },
            Job {
                id: 1,
                kind: Algo::Bfs,
                source: Some(1),
                submit_ns: 0,
                deadline_ns: Some(u64::MAX),
            },
        ];
        let rep = serve(&sc, &g, None, &jobs).unwrap();
        assert_eq!(rep.jobs[0].met_deadline, Some(false));
        assert_eq!(rep.jobs[1].met_deadline, Some(true));
    }

    #[test]
    fn idle_device_jumps_to_the_next_arrival() {
        let (g, _) = graphs();
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo);
        let late = 1_000_000_000_000u64;
        let jobs = [bfs_job(0, 0, 0), bfs_job(1, 3, late)];
        let rep = serve(&sc, &g, None, &jobs).unwrap();
        assert_eq!(rep.jobs[1].start_ns, late, "no busy-waiting before arrival");
        assert_eq!(rep.jobs[1].queue_wait_ns, 0);
    }

    #[test]
    fn sssp_without_weighted_graph_is_an_error() {
        let (g, _) = graphs();
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo);
        let jobs = [Job {
            id: 0,
            kind: Algo::Sssp,
            source: Some(0),
            submit_ns: 0,
            deadline_ns: None,
        }];
        assert_eq!(
            serve(&sc, &g, None, &jobs).unwrap_err(),
            ServeError::WeightedGraphMissing
        );
    }

    #[test]
    fn serve_report_json_is_valid_and_policy_tagged() {
        let (g, _) = graphs();
        for policy in crate::policy::ALL_POLICIES {
            let sc = ServeConfig::new(cfg_for(&g), policy);
            let jobs = [bfs_job(0, 0, 0), bfs_job(1, 9, 0)];
            let rep = serve(&sc, &g, None, &jobs).unwrap();
            let json = rep.to_json();
            ascetic_obs::json::validate(&json).expect("valid serve JSON");
            assert!(json.contains(&format!("\"policy\":\"{}\"", policy.name())));
            assert!(json.contains("\"schema_version\":3"));
            assert!(json.contains("\"latency\":{"), "{json}");
            assert!(json.contains("\"admission\":{"), "{json}");
        }
    }

    #[test]
    fn job_latency_decomposes_into_components() {
        let (g, _) = graphs();
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo).without_batching();
        let jobs = [bfs_job(0, 0, 0), bfs_job(1, 7, 0)];
        let rep = serve(&sc, &g, None, &jobs).unwrap();
        for j in &rep.jobs {
            // components never exceed the end-to-end latency
            assert!(
                j.queue_wait_ns + j.admission_ns <= j.latency_ns(),
                "job {}",
                j.id
            );
            assert!(j.h2d_ns + j.compute_ns > 0, "job {} did work", j.id);
            assert_eq!(j.batch_folds, 0, "batching off");
        }
        // only the cold job pays admission
        assert!(rep.jobs[0].admission_ns > 0);
        assert_eq!(rep.jobs[1].admission_ns, 0);
        let lb = rep.latency_breakdown();
        assert!(lb.total.p50_ns <= lb.total.p99_ns);
        assert!(lb.total.p99_ns <= rep.makespan_ns);
    }

    #[test]
    fn fleet_serve_scales_and_answers_identically() {
        let (g, w) = graphs();
        let cfg = cfg_for(&g);
        let jobs = synthetic_mixed(24, g.num_vertices(), 7, 0, 1);
        let solo = serve(&ServeConfig::new(cfg, Policy::Fifo), &g, Some(&w), &jobs).unwrap();
        let mut prev = solo.makespan_ns;
        for devices in [2, 4] {
            let sc = ServeConfig::new(cfg, Policy::Fifo)
                .with_devices(devices)
                .with_interconnect(InterconnectConfig::nvlink());
            let rep = serve(&sc, &g, Some(&w), &jobs).unwrap();
            assert_eq!(rep.devices, devices as u32);
            assert!(
                rep.makespan_ns < prev,
                "{devices} devices ({} ns) must beat fewer ({prev} ns)",
                rep.makespan_ns
            );
            prev = rep.makespan_ns;
            // answers are device-count-independent
            assert_eq!(rep.jobs.len(), solo.jobs.len());
            for (a, b) in rep.jobs.iter().zip(&solo.jobs) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    output_fingerprint(&a.output),
                    output_fingerprint(&b.output),
                    "job {} answer changed at {devices} devices",
                    a.id
                );
            }
            // more than one device actually served
            assert!(rep.jobs.iter().any(|j| j.device > 0));
            assert!(rep.jobs.iter().any(|j| j.device == 0));
        }
    }

    #[test]
    fn one_device_fleet_config_is_the_classic_scheduler() {
        let (g, w) = graphs();
        let cfg = cfg_for(&g);
        let jobs = synthetic_mixed(16, g.num_vertices(), 11, 50_000, 2);
        for policy in crate::policy::ALL_POLICIES {
            let classic = serve(&ServeConfig::new(cfg, policy), &g, Some(&w), &jobs).unwrap();
            let fleet1 = serve(
                &ServeConfig::new(cfg, policy).with_devices(1),
                &g,
                Some(&w),
                &jobs,
            )
            .unwrap();
            assert_eq!(classic.to_json(), fleet1.to_json(), "{}", policy.name());
        }
    }

    #[test]
    fn cold_devices_replicate_from_warm_peers_over_nvlink() {
        let (g, _) = graphs();
        let cfg = cfg_for(&g);
        // a burst of same-variant jobs: device 0 warms up first, then the
        // other devices' cold builds should ride replicas of its region
        let jobs: Vec<Job> = (0..8).map(|i| bfs_job(i, i * 131, 0)).collect();
        let sc = ServeConfig::new(cfg, Policy::Fifo)
            .without_batching()
            .with_devices(4)
            .with_interconnect(InterconnectConfig::nvlink());
        let rep = serve(&sc, &g, None, &jobs).unwrap();
        assert!(
            rep.replications > 0,
            "cold peers must replicate instead of prestoring"
        );
        assert!(rep.replicated_bytes > 0);
        assert_eq!(
            rep.metrics.counter("serve.replications"),
            Some(rep.replications as u64)
        );
        // a replicated admission is cheaper than the host prestore it
        // replaced, so the fleet makespan must beat sequential serving
        let solo = serve(
            &ServeConfig::new(cfg, Policy::Fifo).without_batching(),
            &g,
            None,
            &jobs,
        )
        .unwrap();
        assert!(rep.makespan_ns < solo.makespan_ns);
        for (a, b) in rep.jobs.iter().zip(&solo.jobs) {
            assert_eq!(output_fingerprint(&a.output), output_fingerprint(&b.output));
        }
    }

    #[test]
    fn fleet_serve_trace_has_per_device_scheduler_tracks() {
        let (g, _) = graphs();
        let jobs: Vec<Job> = (0..6).map(|i| bfs_job(i, i * 53, 0)).collect();
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo)
            .without_batching()
            .with_devices(2);
        let rep = serve(&sc, &g, None, &jobs).unwrap();
        let trace = rep.span_trace.as_ref().expect("serve always traces");
        for d in 0..2 {
            let t = trace
                .track_index(&format!("dev{d}/scheduler"))
                .unwrap_or_else(|| panic!("dev{d} scheduler track"));
            assert!(trace.track_spans(t).count() > 0, "device {d} served");
        }
        assert!(
            trace.track_index("scheduler").is_none(),
            "fleet traces use per-device scheduler names"
        );
    }

    #[test]
    fn serve_span_trace_tracks_job_lifecycles() {
        let (g, _) = graphs();
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo);
        let jobs = [bfs_job(0, 0, 0), bfs_job(1, 9, 0), bfs_job(2, 17, 0)];
        let rep = serve(&sc, &g, None, &jobs).unwrap();
        let trace = rep.span_trace.as_ref().expect("serve always traces");
        let sched = trace.track_index("scheduler").expect("scheduler track");
        assert!(trace.track_spans(sched).count() >= 1);
        for j in &rep.jobs {
            let t = trace
                .track_index(&format!("job {}", j.id))
                .unwrap_or_else(|| panic!("job {} track", j.id));
            let spans: Vec<_> = trace.track_spans(t).collect();
            // lifecycle parent + queued + running (+ admitted when cold)
            assert!(spans.len() >= 3, "job {}: {} spans", j.id, spans.len());
            let parent = spans.iter().find(|s| s.depth == 0).expect("lifecycle span");
            assert_eq!(parent.start_ns, j.submit_ns);
            assert_eq!(parent.end_ns, j.finish_ns);
            assert!(spans.iter().any(|s| s.name == "queued"));
        }
        // all three jobs batched into one run -> one admitted span total
        assert_eq!(rep.batches, 1);
        let admitted = trace
            .spans()
            .iter()
            .filter(|s| s.name == "admitted")
            .count();
        assert_eq!(admitted, 3, "every batch member shows the shared prestore");
    }

    #[test]
    fn mutating_serve_with_empty_schedule_matches_plain_serve() {
        let (g, w) = graphs();
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo);
        let jobs = synthetic_mixed(8, g.num_vertices(), 3, 50_000, 2);
        let plain = serve(&sc, &g, Some(&w), &jobs).unwrap();
        let mutating = serve_mutating(&sc, &g, Some(&w), &jobs, &[]).unwrap();
        assert_eq!(
            plain.to_json(),
            mutating.to_json(),
            "an empty mutation schedule must be a byte-identical no-op"
        );
        assert_eq!(mutating.mutations_applied, 0);
    }

    #[test]
    fn mutating_serve_patches_the_session_instead_of_rebuilding() {
        use ascetic_algos::inmemory::run_in_memory;
        let g = uniform_graph(1_200, 9_000, false, 47);
        let sc = ServeConfig::new(cfg_for(&g), Policy::Fifo).without_batching();
        // find a vertex BFS(0) reaches in >= 3 hops (or never), then
        // insert a 0 -> far shortcut so the answer must visibly change
        let base_dist = match run_in_memory(&g, &ascetic_algos::Bfs::new(0)).output {
            AlgoOutput::Distances(d) => d,
            other => panic!("bfs yields distances, got {other:?}"),
        };
        let far = (0..g.num_vertices() as u32)
            .find(|&v| base_dist[v as usize] > 2)
            .expect("a 1200-vertex uniform graph has vertices beyond 2 hops");
        let mutations = [TraceMutation {
            at_ns: 1,
            mutation: Mutation::Insert {
                src: 0,
                dst: far,
                weight: None,
            },
        }];
        // job 0 decides at t=0 (epoch 0), job 1 after it (epoch 1)
        let jobs = [bfs_job(0, 0, 0), bfs_job(1, 0, 1)];
        let rep = serve_mutating(&sc, &g, None, &jobs, &mutations).unwrap();
        assert_eq!(
            rep.sessions_built, 1,
            "the session is repaired, not rebuilt"
        );
        assert_eq!(rep.mutations_applied, 1);
        assert!(
            rep.mutation_wire_bytes > 0,
            "the splice is paid on the wire"
        );
        // the answers bracket the mutation: job 0 over the base graph,
        // job 1 over the patched one — each bit-identical to the oracle
        let epochs = materialize_variant(&g, &[vec![mutations[0].mutation]], false).unwrap();
        for (job, version) in rep.jobs.iter().zip(&epochs.versions) {
            assert_eq!(
                output_fingerprint(&job.output),
                output_fingerprint(&run_in_memory(version, &ascetic_algos::Bfs::new(0)).output),
                "job {} diverged from its epoch's recompute",
                job.id
            );
        }
        assert_ne!(
            output_fingerprint(&rep.jobs[0].output),
            output_fingerprint(&rep.jobs[1].output),
            "the shortcut must change the distances"
        );
        // the scheduler trace shows the splice window
        let trace = rep.span_trace.as_ref().expect("serve always traces");
        assert!(
            trace.spans().iter().any(|s| s.name.starts_with("mutate")),
            "patching appears on the scheduler track"
        );
    }

    #[test]
    fn mutating_serve_is_deterministic_and_consistent_under_every_policy() {
        use crate::policy::ALL_POLICIES;
        use crate::trace::synthetic_mutations;
        use ascetic_algos::inmemory::run_in_memory;
        let g = uniform_graph(1_500, 11_000, false, 53);
        let w = weighted_variant(&g);
        let jobs = synthetic_mixed(10, g.num_vertices(), 5, 200_000, 2);
        let mutations = synthetic_mutations(12, g.num_vertices(), 9, 400_000);
        // reconstruct the batches the server will apply, per variant
        let mut batches: Vec<Vec<Mutation>> = Vec::new();
        let mut last_at = None;
        for m in &mutations {
            if last_at != Some(m.at_ns) {
                last_at = Some(m.at_ns);
                batches.push(Vec::new());
            }
            batches.last_mut().unwrap().push(m.mutation);
        }
        let un = materialize_variant(&g, &batches, false).unwrap();
        let we = materialize_variant(&w, &batches, true).unwrap();
        for policy in ALL_POLICIES {
            let sc = ServeConfig::new(cfg_for(&g), policy);
            let a = serve_mutating(&sc, &g, Some(&w), &jobs, &mutations).unwrap();
            let b = serve_mutating(&sc, &g, Some(&w), &jobs, &mutations).unwrap();
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{policy:?}: mutating serve must be deterministic"
            );
            // every answer is bit-identical to a recompute on *some* whole
            // epoch — never a half-patched hybrid graph
            for job in &a.jobs {
                let algo: Algo = job.algo.parse().expect("job algo is registered");
                let source = jobs
                    .iter()
                    .find(|j| j.id == job.id)
                    .and_then(|j| j.source)
                    .unwrap_or(0);
                let opts = ProgramOpts::from_source(source);
                let versions = if algo.weighted() {
                    &we.versions
                } else {
                    &un.versions
                };
                let matched = versions
                    .iter()
                    .any(|v| run_in_memory(v, &algo.program(&opts)).output == job.output);
                assert!(
                    matched,
                    "{policy:?}: job {} matches no epoch's recompute",
                    job.id
                );
            }
        }
    }
}
