//! `ascetic-serve`: a multi-query serving layer over the Ascetic engine.
//!
//! Out-of-memory graph systems are usually benchmarked one run at a time,
//! but a deployed device serves a *queue*: many tenants, mixed algorithms,
//! arrivals spread over time. This crate models that workload on the
//! repo's virtual-clock simulator and shows where cross-*query* data
//! efficiency comes from — the same residency argument Ascetic makes
//! across iterations, lifted across jobs:
//!
//! - **admission control** ([`server`]) — jobs are checked against the
//!   device arena via [`ascetic_core::OutOfCoreSystem::prepare`] before
//!   they queue; inadmissible ones are rejected with the prepare error,
//!   not crashed on.
//! - **shared-residency scheduling** ([`policy`]) — the
//!   [`Policy::ResidencyAffinity`] policy prefers the waiting job whose
//!   chunk demand best overlaps what is already on-device, so the warmed
//!   static region and hotness table carry from job to job instead of
//!   being torn down and re-prestored.
//! - **query batching** ([`server`], via `ascetic_algos::batch`) —
//!   compatible single-source BFS/SSSP jobs fold into one multi-source
//!   pass; per-lane answers are exact, so a batched job's output is
//!   byte-identical to running it alone.
//! - **traces** ([`trace`]) — workloads come from a JSONL trace file or
//!   the deterministic synthetic generator; reports ([`report`]) carry
//!   per-job outcomes plus serve-level metrics through `ascetic-obs`.
//! - **streaming mutations** ([`server::serve_mutating`]) — traces may
//!   interleave edge insert/delete records; when a batch's serve-clock
//!   instant passes, each device's live session is delta-patched in place
//!   (resident chunks rewritten, hotness carried) instead of being torn
//!   down and re-prestored, and later jobs answer over the mutated graph.
//!
//! Everything runs on integer virtual time: a (trace, policy, config)
//! triple produces a byte-identical [`ServeReport`] regardless of host
//! thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod policy;
pub mod report;
pub mod server;
pub mod trace;

pub use job::{Algo, Job};
pub use policy::{Policy, ALL_POLICIES};
pub use report::{
    output_fingerprint, JobReport, LatencyBreakdown, LatencyPercentiles, RejectedJob, ServeReport,
};
pub use server::{serve, serve_mutating, ServeConfig, ServeError};
pub use trace::{
    mutating_to_jsonl, parse_trace, parse_trace_mutating, synthetic_mixed, synthetic_mutations,
    to_jsonl, MutatingTrace, TraceError, TraceErrorKind, TraceMutation,
};
