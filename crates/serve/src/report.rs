//! Serve-level reporting: per-job reports plus the aggregate serve report,
//! with a hand-rolled JSON emitter matching the repo's other report paths.

use ascetic_algos::AlgoOutput;
use ascetic_core::{RunReport, RUN_REPORT_SCHEMA_VERSION};
use ascetic_obs::json;
use ascetic_obs::MetricsSnapshot;
use ascetic_sim::ArenaOccupancy;

/// What one admitted job got back from the serving layer.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job's trace id.
    pub id: u32,
    /// Algorithm name (trace spelling).
    pub algo: &'static str,
    /// Batch this job ran in, if it was folded into one.
    pub batch: Option<u32>,
    /// Lanes in the run that produced this job's answer (1 = solo).
    pub lanes: u32,
    /// When the job arrived, serve clock ns.
    pub submit_ns: u64,
    /// When its run started.
    pub start_ns: u64,
    /// When its run finished.
    pub finish_ns: u64,
    /// `start_ns - submit_ns`.
    pub queue_wait_ns: u64,
    /// The deadline it asked for, if any.
    pub deadline_ns: Option<u64>,
    /// Whether `finish_ns <= deadline_ns` (None when no deadline).
    pub met_deadline: Option<bool>,
    /// This job's answer (a batched run's output split to its lane).
    pub output: AlgoOutput,
    /// The underlying engine run report, with `output` replaced by this
    /// job's lane. Batch members share every other field.
    pub run: RunReport,
}

/// A job the admission check turned away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectedJob {
    /// The job's trace id.
    pub id: u32,
    /// Algorithm name.
    pub algo: &'static str,
    /// Human-readable admission failure, [`ascetic_core::PrepareError`] text.
    pub reason: String,
}

/// Everything one [`crate::server::serve`] call produced.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Policy name the schedule was built under.
    pub policy: &'static str,
    /// Serve-clock time when the last job finished.
    pub makespan_ns: u64,
    /// Sum of queue waits over admitted jobs.
    pub total_queue_wait_ns: u64,
    /// On-demand H2D traffic summed over all runs.
    pub ondemand_h2d_bytes: u64,
    /// Prestore traffic summed over all runs (session rebuild cost).
    pub prestore_bytes: u64,
    /// Static-region bytes served from carried residency in warm runs —
    /// traffic a cold session would have paid for again.
    pub residency_hit_bytes: u64,
    /// Multi-source batches executed.
    pub batches: u32,
    /// Jobs that rode in those batches.
    pub batched_jobs: u32,
    /// Sessions built (1 + variant switches; lower is better).
    pub sessions_built: u32,
    /// Device arena occupancy at shutdown.
    pub occupancy: ArenaOccupancy,
    /// Serve-layer metric snapshot (queue waits, batch occupancy, ...).
    pub metrics: MetricsSnapshot,
    /// Per-job reports, sorted by job id.
    pub jobs: Vec<JobReport>,
    /// Jobs refused at admission, sorted by job id.
    pub rejected: Vec<RejectedJob>,
}

/// FNV-1a over an output's canonical little-endian bytes: a compact,
/// deterministic fingerprint for byte-identity oracles across policies.
pub fn output_fingerprint(output: &AlgoOutput) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match output {
        AlgoOutput::Distances(v) | AlgoOutput::Labels(v) => {
            eat(&[1u8]);
            for x in v {
                eat(&x.to_le_bytes());
            }
        }
        AlgoOutput::Ranks(v) => {
            eat(&[2u8]);
            for x in v {
                eat(&x.to_bits().to_le_bytes());
            }
        }
        AlgoOutput::MultiDistances(vs) => {
            eat(&[3u8]);
            for v in vs {
                eat(&(v.len() as u64).to_le_bytes());
                for x in v {
                    eat(&x.to_le_bytes());
                }
            }
        }
    }
    h
}

impl ServeReport {
    /// Average lanes per run, ×100 (integer fixed-point, deterministic).
    pub fn batch_occupancy_x100(&self) -> u64 {
        let runs = self.jobs.len() as u64 - self.batched_jobs as u64 + self.batches as u64;
        if runs == 0 {
            return 0;
        }
        self.jobs.len() as u64 * 100 / runs
    }

    /// The whole serve outcome as one JSON object. Per-job entries carry an
    /// `output_fp` fingerprint instead of the full output, so two reports
    /// are byte-identical iff their schedules *and* answers agree.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.jobs.len() * 160);
        out.push('{');
        json::key_into("schema_version", &mut out);
        out.push_str(&RUN_REPORT_SCHEMA_VERSION.to_string());
        out.push(',');
        json::key_into("policy", &mut out);
        json::string_into(self.policy, &mut out);
        for (k, v) in [
            ("makespan_ns", self.makespan_ns),
            ("total_queue_wait_ns", self.total_queue_wait_ns),
            ("ondemand_h2d_bytes", self.ondemand_h2d_bytes),
            ("prestore_bytes", self.prestore_bytes),
            ("residency_hit_bytes", self.residency_hit_bytes),
            ("batches", self.batches as u64),
            ("batched_jobs", self.batched_jobs as u64),
            ("sessions_built", self.sessions_built as u64),
            ("batch_occupancy_x100", self.batch_occupancy_x100()),
        ] {
            out.push(',');
            json::key_into(k, &mut out);
            out.push_str(&v.to_string());
        }
        out.push(',');
        json::key_into("occupancy", &mut out);
        out.push_str(&format!(
            "{{\"capacity_bytes\":{},\"used_bytes\":{},\"high_water_bytes\":{}}}",
            self.occupancy.capacity_bytes,
            self.occupancy.used_bytes,
            self.occupancy.high_water_bytes
        ));
        out.push(',');
        json::key_into("jobs", &mut out);
        out.push('[');
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::key_into("id", &mut out);
            out.push_str(&j.id.to_string());
            out.push(',');
            json::key_into("algo", &mut out);
            json::string_into(j.algo, &mut out);
            out.push(',');
            json::key_into("batch", &mut out);
            match j.batch {
                Some(b) => out.push_str(&b.to_string()),
                None => out.push_str("null"),
            }
            for (k, v) in [
                ("lanes", j.lanes as u64),
                ("submit_ns", j.submit_ns),
                ("start_ns", j.start_ns),
                ("finish_ns", j.finish_ns),
                ("queue_wait_ns", j.queue_wait_ns),
                ("run_sim_ns", j.run.sim_time_ns),
            ] {
                out.push(',');
                json::key_into(k, &mut out);
                out.push_str(&v.to_string());
            }
            out.push(',');
            json::key_into("deadline_ns", &mut out);
            match j.deadline_ns {
                Some(d) => out.push_str(&d.to_string()),
                None => out.push_str("null"),
            }
            out.push(',');
            json::key_into("met_deadline", &mut out);
            match j.met_deadline {
                Some(true) => out.push_str("true"),
                Some(false) => out.push_str("false"),
                None => out.push_str("null"),
            }
            out.push(',');
            json::key_into("output_fp", &mut out);
            out.push_str(&format!("\"{:016x}\"", output_fingerprint(&j.output)));
            out.push('}');
        }
        out.push(']');
        out.push(',');
        json::key_into("rejected", &mut out);
        out.push('[');
        for (i, r) in self.rejected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::key_into("id", &mut out);
            out.push_str(&r.id.to_string());
            out.push(',');
            json::key_into("algo", &mut out);
            json::string_into(r.algo, &mut out);
            out.push(',');
            json::key_into("reason", &mut out);
            json::string_into(&r.reason, &mut out);
            out.push('}');
        }
        out.push(']');
        out.push(',');
        json::key_into("metrics", &mut out);
        out.push_str(&self.metrics.to_json());
        out.push('}');
        debug_assert!(json::validate(&out).is_ok(), "serve report JSON malformed");
        out
    }

    /// One-paragraph text summary for `--summary text`.
    pub fn summary_text(&self) -> String {
        format!(
            "serve[{}]: {} jobs ({} batched in {} batches, {} rejected), \
             {} sessions, makespan {} ns, queue wait {} ns, \
             on-demand H2D {} B, prestore {} B, residency hits {} B",
            self.policy,
            self.jobs.len(),
            self.batched_jobs,
            self.batches,
            self.rejected.len(),
            self.sessions_built,
            self.makespan_ns,
            self.total_queue_wait_ns,
            self.ondemand_h2d_bytes,
            self.prestore_bytes,
            self.residency_hit_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_variants_and_values() {
        let a = AlgoOutput::Distances(vec![1, 2, 3]);
        let b = AlgoOutput::Labels(vec![1, 2, 3]);
        let c = AlgoOutput::Distances(vec![1, 2, 4]);
        assert_eq!(output_fingerprint(&a), output_fingerprint(&a));
        assert_eq!(output_fingerprint(&a), output_fingerprint(&b)); // same payload class
        assert_ne!(output_fingerprint(&a), output_fingerprint(&c));
        let r1 = AlgoOutput::Ranks(vec![0.5, 0.25]);
        let r2 = AlgoOutput::Ranks(vec![0.5, 0.125]);
        assert_ne!(output_fingerprint(&r1), output_fingerprint(&r2));
    }
}
