//! Serve-level reporting: per-job reports plus the aggregate serve report,
//! with a hand-rolled JSON emitter matching the repo's other report paths.

use ascetic_algos::AlgoOutput;
use ascetic_core::{RunReport, RUN_REPORT_SCHEMA_VERSION};
use ascetic_obs::json;
use ascetic_obs::{MetricsSnapshot, Trace};
use ascetic_sim::ArenaOccupancy;

/// What one admitted job got back from the serving layer.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job's trace id.
    pub id: u32,
    /// Algorithm name (trace spelling).
    pub algo: &'static str,
    /// Fleet device the job ran on (0 on a single-device serve).
    pub device: u32,
    /// Batch this job ran in, if it was folded into one.
    pub batch: Option<u32>,
    /// Lanes in the run that produced this job's answer (1 = solo).
    pub lanes: u32,
    /// Jobs folded into this one's run besides itself (`lanes - 1`).
    pub batch_folds: u32,
    /// When the job arrived, serve clock ns.
    pub submit_ns: u64,
    /// When its run started.
    pub start_ns: u64,
    /// When its run finished.
    pub finish_ns: u64,
    /// `start_ns - submit_ns`.
    pub queue_wait_ns: u64,
    /// Session (re)build cost paid before the run's iterations: the
    /// prestore, 0 on a warm session.
    pub admission_ns: u64,
    /// Link time spent on the run's on-demand H2D transfers plus static
    /// refreshes.
    pub h2d_ns: u64,
    /// Compute-engine time across the run's kernels (GenDataMap, static
    /// region, on-demand).
    pub compute_ns: u64,
    /// The deadline it asked for, if any.
    pub deadline_ns: Option<u64>,
    /// Whether `finish_ns <= deadline_ns` (None when no deadline).
    pub met_deadline: Option<bool>,
    /// This job's answer (a batched run's output split to its lane).
    pub output: AlgoOutput,
    /// The underlying engine run report, with `output` replaced by this
    /// job's lane. Batch members share every other field.
    pub run: RunReport,
}

impl JobReport {
    /// End-to-end latency: `finish_ns - submit_ns`.
    pub fn latency_ns(&self) -> u64 {
        self.finish_ns - self.submit_ns
    }
}

/// Nearest-rank percentile summary of one latency component, ns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median (50th percentile, nearest rank).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

impl LatencyPercentiles {
    /// Nearest-rank percentiles over `samples` (all zero when empty).
    pub fn from_samples(mut samples: Vec<u64>) -> LatencyPercentiles {
        if samples.is_empty() {
            return LatencyPercentiles::default();
        }
        samples.sort_unstable();
        let nth = |p: u64| {
            // nearest-rank: ceil(p/100 * n), 1-based
            let rank = (p * samples.len() as u64).div_ceil(100).max(1) as usize;
            samples[rank - 1]
        };
        LatencyPercentiles {
            p50_ns: nth(50),
            p90_ns: nth(90),
            p99_ns: nth(99),
        }
    }
}

/// SLO-grade latency decomposition over a serve schedule's admitted jobs:
/// the end-to-end latency plus where it went (queue, admission/prestore,
/// H2D link time, compute time). The components describe the run each job
/// rode, so batch members share them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// `finish - submit` per job.
    pub total: LatencyPercentiles,
    /// `start - submit` per job.
    pub queue: LatencyPercentiles,
    /// Session (re)build / prestore time per job.
    pub admission: LatencyPercentiles,
    /// On-demand transfer + refresh link time per job.
    pub h2d: LatencyPercentiles,
    /// Kernel time per job.
    pub compute: LatencyPercentiles,
}

/// A job the admission check turned away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectedJob {
    /// The job's trace id.
    pub id: u32,
    /// Algorithm name.
    pub algo: &'static str,
    /// Human-readable admission failure, [`ascetic_core::PrepareError`] text.
    pub reason: String,
}

/// Everything one [`crate::server::serve`] call produced.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Policy name the schedule was built under.
    pub policy: &'static str,
    /// Devices the schedule ran across (1 = the classic single device).
    pub devices: u32,
    /// Serve-clock time when the last job finished on any device.
    pub makespan_ns: u64,
    /// Sum of queue waits over admitted jobs.
    pub total_queue_wait_ns: u64,
    /// On-demand H2D traffic summed over all runs.
    pub ondemand_h2d_bytes: u64,
    /// Prestore traffic summed over all runs (session rebuild cost).
    pub prestore_bytes: u64,
    /// Static-region bytes served from carried residency in warm runs —
    /// traffic a cold session would have paid for again.
    pub residency_hit_bytes: u64,
    /// Multi-source batches executed.
    pub batches: u32,
    /// Jobs that rode in those batches.
    pub batched_jobs: u32,
    /// Sessions built (1 + variant switches; lower is better).
    pub sessions_built: u32,
    /// Cold session builds whose admission rode a device-to-device
    /// replica of a warm peer's static region instead of a host prestore.
    pub replications: u32,
    /// Bytes those replications put on the interconnect.
    pub replicated_bytes: u64,
    /// Mutation batches delta-patched into live sessions (each device
    /// catches up independently, so one trace batch can count once per
    /// device that was live when its boundary passed).
    pub mutations_applied: u32,
    /// Bytes those patches put on the wire (delta splices, not rebuilds).
    pub mutation_wire_bytes: u64,
    /// Device arena occupancy at shutdown.
    pub occupancy: ArenaOccupancy,
    /// Serve-layer metric snapshot (queue waits, batch occupancy, ...).
    pub metrics: MetricsSnapshot,
    /// Hierarchical span trace on the serve clock: one track per job
    /// (queued → admitted → running) plus the scheduler's run track.
    pub span_trace: Option<Trace>,
    /// Per-job reports, sorted by job id.
    pub jobs: Vec<JobReport>,
    /// Jobs refused at admission, sorted by job id.
    pub rejected: Vec<RejectedJob>,
}

/// FNV-1a over an output's canonical little-endian bytes: a compact,
/// deterministic fingerprint for byte-identity oracles across policies.
/// (The hash itself lives on [`AlgoOutput::fingerprint`] so run reports
/// and serve reports agree on the encoding.)
pub fn output_fingerprint(output: &AlgoOutput) -> u64 {
    output.fingerprint()
}

impl ServeReport {
    /// Percentile decomposition of job latency into
    /// queue/admission/H2D/compute components, over the admitted jobs.
    pub fn latency_breakdown(&self) -> LatencyBreakdown {
        LatencyBreakdown {
            total: LatencyPercentiles::from_samples(
                self.jobs.iter().map(|j| j.latency_ns()).collect(),
            ),
            queue: LatencyPercentiles::from_samples(
                self.jobs.iter().map(|j| j.queue_wait_ns).collect(),
            ),
            admission: LatencyPercentiles::from_samples(
                self.jobs.iter().map(|j| j.admission_ns).collect(),
            ),
            h2d: LatencyPercentiles::from_samples(self.jobs.iter().map(|j| j.h2d_ns).collect()),
            compute: LatencyPercentiles::from_samples(
                self.jobs.iter().map(|j| j.compute_ns).collect(),
            ),
        }
    }

    /// Average lanes per run, ×100 (integer fixed-point, deterministic).
    pub fn batch_occupancy_x100(&self) -> u64 {
        let runs = self.jobs.len() as u64 - self.batched_jobs as u64 + self.batches as u64;
        if runs == 0 {
            return 0;
        }
        self.jobs.len() as u64 * 100 / runs
    }

    /// The whole serve outcome as one JSON object. Per-job entries carry an
    /// `output_fp` fingerprint instead of the full output, so two reports
    /// are byte-identical iff their schedules *and* answers agree.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.jobs.len() * 160);
        out.push('{');
        json::key_into("schema_version", &mut out);
        out.push_str(&RUN_REPORT_SCHEMA_VERSION.to_string());
        out.push(',');
        json::key_into("policy", &mut out);
        json::string_into(self.policy, &mut out);
        for (k, v) in [
            ("devices", self.devices as u64),
            ("makespan_ns", self.makespan_ns),
            ("total_queue_wait_ns", self.total_queue_wait_ns),
            ("ondemand_h2d_bytes", self.ondemand_h2d_bytes),
            ("prestore_bytes", self.prestore_bytes),
            ("residency_hit_bytes", self.residency_hit_bytes),
            ("batches", self.batches as u64),
            ("batched_jobs", self.batched_jobs as u64),
            ("sessions_built", self.sessions_built as u64),
            ("replications", self.replications as u64),
            ("replicated_bytes", self.replicated_bytes),
            ("mutations_applied", self.mutations_applied as u64),
            ("mutation_wire_bytes", self.mutation_wire_bytes),
            ("batch_occupancy_x100", self.batch_occupancy_x100()),
        ] {
            out.push(',');
            json::key_into(k, &mut out);
            out.push_str(&v.to_string());
        }
        out.push(',');
        json::key_into("latency", &mut out);
        let lb = self.latency_breakdown();
        out.push('{');
        for (i, (k, p)) in [
            ("total", lb.total),
            ("queue", lb.queue),
            ("admission", lb.admission),
            ("h2d", lb.h2d),
            ("compute", lb.compute),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            json::key_into(k, &mut out);
            out.push_str(&format!(
                "{{\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                p.p50_ns, p.p90_ns, p.p99_ns
            ));
        }
        out.push('}');
        out.push(',');
        json::key_into("occupancy", &mut out);
        out.push_str(&format!(
            "{{\"capacity_bytes\":{},\"used_bytes\":{},\"high_water_bytes\":{}}}",
            self.occupancy.capacity_bytes,
            self.occupancy.used_bytes,
            self.occupancy.high_water_bytes
        ));
        out.push(',');
        json::key_into("jobs", &mut out);
        out.push('[');
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::key_into("id", &mut out);
            out.push_str(&j.id.to_string());
            out.push(',');
            json::key_into("algo", &mut out);
            json::string_into(j.algo, &mut out);
            out.push(',');
            json::key_into("batch", &mut out);
            match j.batch {
                Some(b) => out.push_str(&b.to_string()),
                None => out.push_str("null"),
            }
            for (k, v) in [
                ("device", j.device as u64),
                ("lanes", j.lanes as u64),
                ("batch_folds", j.batch_folds as u64),
                ("submit_ns", j.submit_ns),
                ("start_ns", j.start_ns),
                ("finish_ns", j.finish_ns),
                ("queue_wait_ns", j.queue_wait_ns),
                ("admission_ns", j.admission_ns),
                ("h2d_ns", j.h2d_ns),
                ("compute_ns", j.compute_ns),
                ("run_sim_ns", j.run.sim_time_ns),
            ] {
                out.push(',');
                json::key_into(k, &mut out);
                out.push_str(&v.to_string());
            }
            out.push(',');
            json::key_into("deadline_ns", &mut out);
            match j.deadline_ns {
                Some(d) => out.push_str(&d.to_string()),
                None => out.push_str("null"),
            }
            out.push(',');
            json::key_into("met_deadline", &mut out);
            match j.met_deadline {
                Some(true) => out.push_str("true"),
                Some(false) => out.push_str("false"),
                None => out.push_str("null"),
            }
            out.push(',');
            json::key_into("output_fp", &mut out);
            out.push_str(&format!("\"{:016x}\"", output_fingerprint(&j.output)));
            out.push('}');
        }
        out.push(']');
        out.push(',');
        json::key_into("rejected", &mut out);
        out.push('[');
        for (i, r) in self.rejected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json::key_into("id", &mut out);
            out.push_str(&r.id.to_string());
            out.push(',');
            json::key_into("algo", &mut out);
            json::string_into(r.algo, &mut out);
            out.push(',');
            json::key_into("reason", &mut out);
            json::string_into(&r.reason, &mut out);
            out.push('}');
        }
        out.push(']');
        out.push(',');
        json::key_into("metrics", &mut out);
        out.push_str(&self.metrics.to_json());
        out.push('}');
        debug_assert!(json::validate(&out).is_ok(), "serve report JSON malformed");
        out
    }

    /// One-paragraph text summary for `--summary text`.
    pub fn summary_text(&self) -> String {
        let lb = self.latency_breakdown();
        format!(
            "serve[{}]: {} devices, {} jobs ({} batched in {} batches, {} rejected), \
             {} sessions ({} replicated), {} mutation batches ({} B spliced), \
             makespan {} ns, queue wait {} ns, \
             on-demand H2D {} B, prestore {} B, residency hits {} B\n\
             latency p50/p90/p99 ns: total {}/{}/{}, queue {}/{}/{}, \
             admission {}/{}/{}, h2d {}/{}/{}, compute {}/{}/{}",
            self.policy,
            self.devices,
            self.jobs.len(),
            self.batched_jobs,
            self.batches,
            self.rejected.len(),
            self.sessions_built,
            self.replications,
            self.mutations_applied,
            self.mutation_wire_bytes,
            self.makespan_ns,
            self.total_queue_wait_ns,
            self.ondemand_h2d_bytes,
            self.prestore_bytes,
            self.residency_hit_bytes,
            lb.total.p50_ns,
            lb.total.p90_ns,
            lb.total.p99_ns,
            lb.queue.p50_ns,
            lb.queue.p90_ns,
            lb.queue.p99_ns,
            lb.admission.p50_ns,
            lb.admission.p90_ns,
            lb.admission.p99_ns,
            lb.h2d.p50_ns,
            lb.h2d.p90_ns,
            lb.h2d.p99_ns,
            lb.compute.p50_ns,
            lb.compute.p90_ns,
            lb.compute.p99_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(
            LatencyPercentiles::from_samples(vec![]),
            LatencyPercentiles::default()
        );
        let p = LatencyPercentiles::from_samples(vec![5]);
        assert_eq!((p.p50_ns, p.p90_ns, p.p99_ns), (5, 5, 5));
        // 1..=100: nearest-rank pN over 100 samples is exactly N
        let p = LatencyPercentiles::from_samples((1..=100).collect());
        assert_eq!((p.p50_ns, p.p90_ns, p.p99_ns), (50, 90, 99));
        // 10 samples: p50 -> rank 5, p90 -> rank 9, p99 -> rank 10
        let p = LatencyPercentiles::from_samples((1..=10).map(|x| x * 10).collect());
        assert_eq!((p.p50_ns, p.p90_ns, p.p99_ns), (50, 90, 100));
    }

    #[test]
    fn fingerprint_separates_variants_and_values() {
        let a = AlgoOutput::Distances(vec![1, 2, 3]);
        let b = AlgoOutput::Labels(vec![1, 2, 3]);
        let c = AlgoOutput::Distances(vec![1, 2, 4]);
        assert_eq!(output_fingerprint(&a), output_fingerprint(&a));
        assert_eq!(output_fingerprint(&a), output_fingerprint(&b)); // same payload class
        assert_ne!(output_fingerprint(&a), output_fingerprint(&c));
        let r1 = AlgoOutput::Ranks(vec![0.5, 0.25]);
        let r2 = AlgoOutput::Ranks(vec![0.5, 0.125]);
        assert_ne!(output_fingerprint(&r1), output_fingerprint(&r2));
    }
}
