//! Pluggable scheduling policies.

/// How the scheduler picks the next job among those that have arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Strict arrival order (`submit_ns`, then id).
    Fifo,
    /// Shortest job first: rank by a per-algorithm running-mean cost
    /// estimate (seeded from the graph's edge volume, refined by the
    /// hotness of observed runs), shortest first.
    Sjf,
    /// Residency affinity: prefer the job whose chunk demand best overlaps
    /// what the live session already holds on-device, carrying the warmed
    /// static region and hotness table across jobs instead of tearing the
    /// session down.
    ResidencyAffinity,
}

/// Every policy, in the order benches and CI sweep them.
pub const ALL_POLICIES: [Policy; 3] = [Policy::Fifo, Policy::Sjf, Policy::ResidencyAffinity];

impl Policy {
    /// Parse a CLI `--policy` value.
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "fifo" => Some(Policy::Fifo),
            "sjf" => Some(Policy::Sjf),
            "residency" | "residency-affinity" => Some(Policy::ResidencyAffinity),
            _ => None,
        }
    }

    /// Display name (matches the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::Sjf => "sjf",
            Policy::ResidencyAffinity => "residency",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for p in ALL_POLICIES {
            assert_eq!(Policy::parse(p.name()), Some(p));
        }
        assert_eq!(
            Policy::parse("residency-affinity"),
            Some(Policy::ResidencyAffinity)
        );
        assert_eq!(Policy::parse("lifo"), None);
    }
}
