//! Jobs: what a tenant submits to the serving layer.

use ascetic_graph::VertexId;

/// The algorithms the serving layer accepts. Single-source traversals
/// ([`AlgoKind::Bfs`], [`AlgoKind::Sssp`]) are batchable; whole-graph
/// analytics ([`AlgoKind::Cc`], [`AlgoKind::Pr`]) always run alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// Breadth-first search from `source`.
    Bfs,
    /// Single-source shortest paths from `source` (weighted graph).
    Sssp,
    /// Connected components.
    Cc,
    /// PageRank.
    Pr,
}

impl AlgoKind {
    /// Parse a trace's `algo` field.
    pub fn parse(s: &str) -> Option<AlgoKind> {
        match s {
            "bfs" => Some(AlgoKind::Bfs),
            "sssp" => Some(AlgoKind::Sssp),
            "cc" => Some(AlgoKind::Cc),
            "pr" => Some(AlgoKind::Pr),
            _ => None,
        }
    }

    /// Display name (matches the trace spelling).
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Bfs => "bfs",
            AlgoKind::Sssp => "sssp",
            AlgoKind::Cc => "cc",
            AlgoKind::Pr => "pr",
        }
    }

    /// Whether jobs of this kind run on the weighted graph variant.
    pub fn needs_weights(self) -> bool {
        self == AlgoKind::Sssp
    }

    /// Whether this kind takes a source vertex (and is therefore
    /// batchable with same-kind jobs).
    pub fn single_source(self) -> bool {
        matches!(self, AlgoKind::Bfs | AlgoKind::Sssp)
    }
}

/// One queued query: an algorithm, its parameters and its arrival time on
/// the serve clock, plus an optional latency deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Caller-chosen identifier (unique within a trace).
    pub id: u32,
    /// Algorithm to run.
    pub kind: AlgoKind,
    /// Source vertex for single-source kinds (`None` otherwise).
    pub source: Option<VertexId>,
    /// Arrival time on the serve virtual clock, ns.
    pub submit_ns: u64,
    /// Optional completion deadline, ns on the serve clock.
    pub deadline_ns: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_and_classifies() {
        for k in [AlgoKind::Bfs, AlgoKind::Sssp, AlgoKind::Cc, AlgoKind::Pr] {
            assert_eq!(AlgoKind::parse(k.name()), Some(k));
        }
        assert_eq!(AlgoKind::parse("pagerank"), None);
        assert!(AlgoKind::Sssp.needs_weights());
        assert!(!AlgoKind::Bfs.needs_weights());
        assert!(AlgoKind::Bfs.single_source() && AlgoKind::Sssp.single_source());
        assert!(!AlgoKind::Cc.single_source() && !AlgoKind::Pr.single_source());
    }
}
