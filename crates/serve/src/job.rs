//! Jobs: what a tenant submits to the serving layer.
//!
//! Job kinds are [`Algo`] values straight from the algorithm registry —
//! the serve layer keeps no private algorithm list. Which kinds are
//! admissible ([`Algo::servable`]) and which fold into multi-source
//! batches ([`ascetic_algos::Capabilities::batchable`]) are registry
//! metadata; inadmissible jobs are rejected per-job at admission with a
//! reason, never mid-run.

pub use ascetic_algos::Algo;
use ascetic_graph::VertexId;

/// One queued query: an algorithm, its parameters and its arrival time on
/// the serve clock, plus an optional latency deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Caller-chosen identifier (unique within a trace).
    pub id: u32,
    /// Algorithm to run.
    pub kind: Algo,
    /// Source vertex for single-source kinds (`None` otherwise).
    pub source: Option<VertexId>,
    /// Arrival time on the serve virtual clock, ns.
    pub submit_ns: u64,
    /// Optional completion deadline, ns on the serve clock.
    pub deadline_ns: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_and_classifies() {
        for k in [
            Algo::Bfs,
            Algo::Sssp,
            Algo::Cc,
            Algo::Pr,
            Algo::Lp,
            Algo::Bc,
        ] {
            assert_eq!(k.name().parse::<Algo>().ok(), Some(k));
            assert!(k.servable());
        }
        assert!("pagerank".parse::<Algo>().is_err());
        assert!(Algo::Sssp.weighted());
        assert!(!Algo::Bfs.weighted());
        assert!(Algo::Bfs.single_source() && Algo::Sssp.single_source());
        assert!(!Algo::Cc.single_source() && !Algo::Pr.single_source());
        assert!(
            !Algo::MsBfs.servable() && !Algo::Closeness.servable(),
            "whole-graph sweeps are batch workloads, not queries"
        );
    }
}
