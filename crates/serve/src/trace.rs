//! JSONL job traces: parsing with line-accurate errors, plus a
//! deterministic synthetic-trace generator for benches and smoke tests.
//!
//! One job per line, a flat JSON object:
//!
//! ```text
//! {"id": 1, "algo": "bfs", "source": 5, "submit_ns": 0, "deadline_ns": 1000000}
//! ```
//!
//! `id` and `algo` are required; `source` is required for the
//! single-source kinds (`bfs`, `sssp`) and rejected for the whole-graph
//! ones; `submit_ns` defaults to 0; `deadline_ns` is optional. Blank lines
//! and `#` comment lines are skipped. Errors carry the 1-based line
//! number, in the same spirit as `ascetic-core`'s `ConfigError`: every
//! variant names the offending field and value so the CLI can print an
//! actionable message and exit nonzero.
//!
//! A *mutating* trace ([`parse_trace_mutating`]) may interleave edge
//! mutation records with the jobs:
//!
//! ```text
//! {"mutate": "insert", "src": 1, "dst": 2, "at": 500, "weight": 3}
//! {"mutate": "delete", "src": 7, "dst": 0, "at": 900}
//! ```
//!
//! `mutate`, `src` and `dst` are required; `at` (serve-clock ns, default
//! 0) stamps when the mutation lands; `weight` is optional on inserts
//! (the serving layer weights each graph variant itself) and rejected on
//! deletes. Records sharing an `at` form one atomic batch. The plain
//! [`parse_trace`] stays strict and rejects mutation lines.

use ascetic_graph::Mutation;

use crate::job::{Algo, Job};

/// What went wrong on a trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// The line is not a flat JSON object (`{"key": value, ...}`).
    Syntax(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field holds a value of the wrong type or out of range.
    BadValue {
        /// Field name.
        field: &'static str,
        /// The offending raw text.
        value: String,
    },
    /// `algo` names no known algorithm.
    UnknownAlgo(String),
    /// `source` given for a whole-graph algorithm.
    UnexpectedSource(&'static str),
    /// The same `id` appeared on an earlier line.
    DuplicateId(u32),
    /// `source` is out of range for the graph being served.
    SourceOutOfRange {
        /// The offending source vertex.
        source: u32,
        /// Vertices in the graph.
        num_vertices: usize,
    },
    /// `mutate` is neither `insert` nor `delete`.
    UnknownMutation(String),
    /// `weight` given on a delete mutation.
    UnexpectedWeight,
    /// A mutation endpoint is out of range for the graph being served.
    EndpointOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// Vertices in the graph.
        num_vertices: usize,
    },
}

/// A malformed trace line (1-based `line`), styled after
/// `ascetic_core::ConfigError`: one sentence naming the field, the value
/// and the rule it broke.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number in the trace file.
    pub line: usize,
    /// What was wrong with it.
    pub kind: TraceErrorKind,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: ", self.line)?;
        match &self.kind {
            TraceErrorKind::Syntax(what) => {
                write!(f, "{what} (expected a flat JSON object per line)")
            }
            TraceErrorKind::MissingField(field) => write!(f, "missing required field \"{field}\""),
            TraceErrorKind::BadValue { field, value } => {
                write!(f, "field \"{field}\" has invalid value {value}")
            }
            TraceErrorKind::UnknownAlgo(a) => {
                write!(f, "unknown algo \"{a}\" (expected one of: ")?;
                for (i, k) in Algo::ALL.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", k.name())?;
                }
                write!(f, ")")
            }
            TraceErrorKind::UnexpectedSource(algo) => {
                write!(
                    f,
                    "\"{algo}\" is a whole-graph algorithm and takes no \"source\""
                )
            }
            TraceErrorKind::DuplicateId(id) => {
                write!(f, "job id {id} already used by an earlier line")
            }
            TraceErrorKind::SourceOutOfRange {
                source,
                num_vertices,
            } => write!(
                f,
                "source {source} out of range for a graph with {num_vertices} vertices"
            ),
            TraceErrorKind::UnknownMutation(m) => {
                write!(
                    f,
                    "unknown mutate \"{m}\" (expected \"insert\" or \"delete\")"
                )
            }
            TraceErrorKind::UnexpectedWeight => {
                write!(
                    f,
                    "a delete removes every parallel edge and takes no \"weight\""
                )
            }
            TraceErrorKind::EndpointOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for a graph with {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// One parsed `key: value` pair; values stay raw text until typed.
struct Field<'a> {
    key: &'a str,
    value: &'a str,
}

/// Split a flat JSON object into raw fields. No nesting, no arrays — a
/// trace line is a record, not a document.
fn split_fields(line: &str) -> Result<Vec<Field<'_>>, TraceErrorKind> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| TraceErrorKind::Syntax("line is not a JSON object".into()))?
        .trim();
    let mut fields = Vec::new();
    if body.is_empty() {
        return Ok(fields);
    }
    // split on top-level commas; the only strings are keys and the algo
    // value, neither of which may contain commas or escapes
    for part in body.split(',') {
        let (k, v) = part.split_once(':').ok_or_else(|| {
            TraceErrorKind::Syntax(format!("expected \"key\": value, got {part:?}"))
        })?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| {
                TraceErrorKind::Syntax(format!("field name {} is not quoted", k.trim()))
            })?;
        fields.push(Field {
            key,
            value: v.trim(),
        });
    }
    Ok(fields)
}

fn parse_u64(f: &Field<'_>, field: &'static str) -> Result<u64, TraceErrorKind> {
    f.value.parse().map_err(|_| TraceErrorKind::BadValue {
        field,
        value: f.value.to_string(),
    })
}

fn parse_string<'a>(f: &Field<'a>, field: &'static str) -> Result<&'a str, TraceErrorKind> {
    f.value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| TraceErrorKind::BadValue {
            field,
            value: f.value.to_string(),
        })
}

fn parse_line(line: &str) -> Result<Job, TraceErrorKind> {
    parse_job_fields(&split_fields(line)?)
}

fn parse_job_fields(fields: &[Field<'_>]) -> Result<Job, TraceErrorKind> {
    let mut id = None;
    let mut algo = None;
    let mut source = None;
    let mut submit_ns = 0u64;
    let mut deadline_ns = None;
    for f in fields {
        match f.key {
            "id" => {
                let v = parse_u64(f, "id")?;
                id = Some(u32::try_from(v).map_err(|_| TraceErrorKind::BadValue {
                    field: "id",
                    value: f.value.to_string(),
                })?);
            }
            "algo" => {
                let s = parse_string(f, "algo")?;
                algo = Some(
                    s.parse::<Algo>()
                        .map_err(|_| TraceErrorKind::UnknownAlgo(s.into()))?,
                );
            }
            "source" => {
                let v = parse_u64(f, "source")?;
                source = Some(u32::try_from(v).map_err(|_| TraceErrorKind::BadValue {
                    field: "source",
                    value: f.value.to_string(),
                })?);
            }
            "submit_ns" => submit_ns = parse_u64(f, "submit_ns")?,
            "deadline_ns" => deadline_ns = Some(parse_u64(f, "deadline_ns")?),
            other => {
                return Err(TraceErrorKind::Syntax(format!("unknown field \"{other}\"")));
            }
        }
    }
    let id = id.ok_or(TraceErrorKind::MissingField("id"))?;
    let kind = algo.ok_or(TraceErrorKind::MissingField("algo"))?;
    if kind.single_source() {
        if source.is_none() {
            return Err(TraceErrorKind::MissingField("source"));
        }
    } else if source.is_some() {
        return Err(TraceErrorKind::UnexpectedSource(kind.name()));
    }
    Ok(Job {
        id,
        kind,
        source,
        submit_ns,
        deadline_ns,
    })
}

/// Parse a JSONL trace. Jobs come back sorted by `(submit_ns, id)` — the
/// canonical queue order every policy starts from. `num_vertices`, when
/// known, bounds the `source` fields.
pub fn parse_trace(text: &str, num_vertices: Option<usize>) -> Result<Vec<Job>, TraceError> {
    let mut jobs: Vec<Job> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let at = |kind| TraceError { line: lineno, kind };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let job = parse_line(trimmed).map_err(at)?;
        if jobs.iter().any(|j| j.id == job.id) {
            return Err(at(TraceErrorKind::DuplicateId(job.id)));
        }
        if let (Some(n), Some(s)) = (num_vertices, job.source) {
            if s as usize >= n {
                return Err(at(TraceErrorKind::SourceOutOfRange {
                    source: s,
                    num_vertices: n,
                }));
            }
        }
        jobs.push(job);
    }
    jobs.sort_by_key(|j| (j.submit_ns, j.id));
    Ok(jobs)
}

/// One edge mutation scheduled on the serve clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMutation {
    /// Serve-clock instant the mutation lands (records sharing an `at`
    /// form one atomic batch).
    pub at_ns: u64,
    /// The edge insert/delete. Insert weights are optional here: the
    /// serving layer normalizes them per graph variant (dropped on the
    /// unweighted graph, defaulted to 1 on the weighted one).
    pub mutation: Mutation,
}

/// A parsed mutating trace: the job queue plus the mutation schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutatingTrace {
    /// Jobs sorted by `(submit_ns, id)` — exactly [`parse_trace`]'s order.
    pub jobs: Vec<Job>,
    /// Mutations sorted by `at_ns` (stable: file order breaks ties).
    pub mutations: Vec<TraceMutation>,
}

fn parse_mutation_fields(fields: &[Field<'_>]) -> Result<TraceMutation, TraceErrorKind> {
    let mut op = None;
    let mut src = None;
    let mut dst = None;
    let mut weight = None;
    let mut at_ns = 0u64;
    for f in fields {
        match f.key {
            "mutate" => op = Some(parse_string(f, "mutate")?),
            "src" => {
                let v = parse_u64(f, "src")?;
                src = Some(u32::try_from(v).map_err(|_| TraceErrorKind::BadValue {
                    field: "src",
                    value: f.value.to_string(),
                })?);
            }
            "dst" => {
                let v = parse_u64(f, "dst")?;
                dst = Some(u32::try_from(v).map_err(|_| TraceErrorKind::BadValue {
                    field: "dst",
                    value: f.value.to_string(),
                })?);
            }
            "weight" => {
                let v = parse_u64(f, "weight")?;
                weight = Some(u32::try_from(v).map_err(|_| TraceErrorKind::BadValue {
                    field: "weight",
                    value: f.value.to_string(),
                })?);
            }
            "at" => at_ns = parse_u64(f, "at")?,
            other => {
                return Err(TraceErrorKind::Syntax(format!("unknown field \"{other}\"")));
            }
        }
    }
    let op = op.expect("dispatched on the mutate key");
    let src = src.ok_or(TraceErrorKind::MissingField("src"))?;
    let dst = dst.ok_or(TraceErrorKind::MissingField("dst"))?;
    let mutation = match op {
        "insert" => Mutation::Insert { src, dst, weight },
        "delete" => {
            if weight.is_some() {
                return Err(TraceErrorKind::UnexpectedWeight);
            }
            Mutation::Delete { src, dst }
        }
        other => return Err(TraceErrorKind::UnknownMutation(other.into())),
    };
    Ok(TraceMutation { at_ns, mutation })
}

/// Parse a JSONL trace that may interleave mutation records with jobs.
/// Jobs get the exact [`parse_trace`] treatment (duplicate-id rejection,
/// source bounds, canonical `(submit_ns, id)` order); mutation endpoints
/// are bounded by `num_vertices` when known and the schedule comes back
/// sorted by `at_ns` with file order breaking ties.
pub fn parse_trace_mutating(
    text: &str,
    num_vertices: Option<usize>,
) -> Result<MutatingTrace, TraceError> {
    let mut jobs: Vec<Job> = Vec::new();
    let mut mutations: Vec<TraceMutation> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let at = |kind| TraceError { line: lineno, kind };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields = split_fields(trimmed).map_err(at)?;
        if fields.iter().any(|f| f.key == "mutate") {
            let m = parse_mutation_fields(&fields).map_err(at)?;
            if let Some(n) = num_vertices {
                let (src, dst) = match m.mutation {
                    Mutation::Insert { src, dst, .. } => (src, dst),
                    Mutation::Delete { src, dst } => (src, dst),
                };
                for v in [src, dst] {
                    if v as usize >= n {
                        return Err(at(TraceErrorKind::EndpointOutOfRange {
                            vertex: v,
                            num_vertices: n,
                        }));
                    }
                }
            }
            mutations.push(m);
            continue;
        }
        let job = parse_job_fields(&fields).map_err(at)?;
        if jobs.iter().any(|j| j.id == job.id) {
            return Err(at(TraceErrorKind::DuplicateId(job.id)));
        }
        if let (Some(n), Some(s)) = (num_vertices, job.source) {
            if s as usize >= n {
                return Err(at(TraceErrorKind::SourceOutOfRange {
                    source: s,
                    num_vertices: n,
                }));
            }
        }
        jobs.push(job);
    }
    jobs.sort_by_key(|j| (j.submit_ns, j.id));
    mutations.sort_by_key(|m| m.at_ns);
    Ok(MutatingTrace { jobs, mutations })
}

/// Serialize a mutating trace back to JSONL (inverse of
/// [`parse_trace_mutating`] up to line order, which the parser
/// canonicalizes anyway).
pub fn mutating_to_jsonl(jobs: &[Job], mutations: &[TraceMutation]) -> String {
    let mut out = to_jsonl(jobs);
    for m in mutations {
        match m.mutation {
            Mutation::Insert { src, dst, weight } => {
                out.push_str(&format!(
                    "{{\"mutate\": \"insert\", \"src\": {src}, \"dst\": {dst}"
                ));
                if let Some(w) = weight {
                    out.push_str(&format!(", \"weight\": {w}"));
                }
            }
            Mutation::Delete { src, dst } => {
                out.push_str(&format!(
                    "{{\"mutate\": \"delete\", \"src\": {src}, \"dst\": {dst}"
                ));
            }
        }
        out.push_str(&format!(", \"at\": {}}}\n", m.at_ns));
    }
    out
}

/// Serialize jobs back to the JSONL trace format (inverse of
/// [`parse_trace`]; used by the bench to persist generated traces).
pub fn to_jsonl(jobs: &[Job]) -> String {
    let mut out = String::new();
    for j in jobs {
        out.push_str(&format!(
            "{{\"id\": {}, \"algo\": \"{}\"",
            j.id,
            j.kind.name()
        ));
        if let Some(s) = j.source {
            out.push_str(&format!(", \"source\": {s}"));
        }
        out.push_str(&format!(", \"submit_ns\": {}", j.submit_ns));
        if let Some(d) = j.deadline_ns {
            out.push_str(&format!(", \"deadline_ns\": {d}"));
        }
        out.push_str("}\n");
    }
    out
}

/// Deterministic xorshift64*, for source picking in synthetic traces —
/// the serve layer is virtual-clock deterministic, so its inputs must be
/// too.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Generate a mixed serve trace: `n_jobs` jobs cycling through
/// BFS/SSSP/CC/PR (weighted SSSP interleaved with the unweighted kinds, so
/// a FIFO schedule keeps flipping the device between graph variants while
/// an affinity schedule can group them), sources drawn deterministically
/// from `seed`, arrivals spaced `spacing_ns` apart in bursts of
/// `burst` jobs.
pub fn synthetic_mixed(
    n_jobs: usize,
    num_vertices: usize,
    seed: u64,
    spacing_ns: u64,
    burst: usize,
) -> Vec<Job> {
    assert!(num_vertices > 0 && burst > 0);
    let mut rng = seed | 1;
    let mut jobs = Vec::with_capacity(n_jobs);
    const CYCLE: [Algo; 6] = [
        Algo::Bfs,
        Algo::Sssp,
        Algo::Bfs,
        Algo::Cc,
        Algo::Sssp,
        Algo::Pr,
    ];
    for i in 0..n_jobs {
        let kind = CYCLE[i % CYCLE.len()];
        let source = kind
            .single_source()
            .then(|| (xorshift(&mut rng) % num_vertices as u64) as u32);
        jobs.push(Job {
            id: i as u32,
            kind,
            source,
            submit_ns: (i / burst) as u64 * spacing_ns,
            deadline_ns: None,
        });
    }
    jobs
}

/// Generate a deterministic mutation schedule: `n` mutations (roughly
/// 70% weighted inserts, 30% deletes) in batches of three sharing an
/// `at_ns`, spaced `spacing_ns` apart. Deletes name random endpoint pairs
/// — ones that miss every live edge are counted no-ops downstream.
pub fn synthetic_mutations(
    n: usize,
    num_vertices: usize,
    seed: u64,
    spacing_ns: u64,
) -> Vec<TraceMutation> {
    assert!(num_vertices > 0);
    let mut rng = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
    (0..n)
        .map(|i| {
            let src = (xorshift(&mut rng) % num_vertices as u64) as u32;
            let dst = (xorshift(&mut rng) % num_vertices as u64) as u32;
            let mutation = if xorshift(&mut rng) % 10 < 3 {
                Mutation::Delete { src, dst }
            } else {
                Mutation::Insert {
                    src,
                    dst,
                    weight: Some((xorshift(&mut rng) % 9 + 1) as u32),
                }
            };
            TraceMutation {
                at_ns: (i / 3) as u64 * spacing_ns,
                mutation,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_line() {
        let jobs = parse_trace(
            "{\"id\": 3, \"algo\": \"sssp\", \"source\": 7, \"submit_ns\": 100, \"deadline_ns\": 5000}\n",
            Some(10),
        )
        .unwrap();
        assert_eq!(
            jobs,
            vec![Job {
                id: 3,
                kind: Algo::Sssp,
                source: Some(7),
                submit_ns: 100,
                deadline_ns: Some(5000),
            }]
        );
    }

    #[test]
    fn skips_blanks_and_comments_and_sorts_by_submit() {
        let text = "# serve trace\n\n{\"id\": 1, \"algo\": \"cc\", \"submit_ns\": 50}\n{\"id\": 0, \"algo\": \"bfs\", \"source\": 2}\n";
        let jobs = parse_trace(text, None).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 0, "submit 0 sorts first");
        assert_eq!(jobs[1].id, 1);
    }

    #[test]
    fn errors_carry_the_line_number() {
        let text = "{\"id\": 0, \"algo\": \"bfs\", \"source\": 1}\nnot json\n";
        let err = parse_trace(text, None).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("trace line 2: "));

        let text = "{\"id\": 0, \"algo\": \"walk\"}\n";
        let err = parse_trace(text, None).unwrap_err();
        assert_eq!(err.kind, TraceErrorKind::UnknownAlgo("walk".into()));
        assert!(err.to_string().contains("unknown algo"));
    }

    #[test]
    fn field_rules_are_enforced() {
        let missing = parse_trace("{\"algo\": \"bfs\", \"source\": 1}\n", None).unwrap_err();
        assert_eq!(missing.kind, TraceErrorKind::MissingField("id"));
        let no_source = parse_trace("{\"id\": 0, \"algo\": \"bfs\"}\n", None).unwrap_err();
        assert_eq!(no_source.kind, TraceErrorKind::MissingField("source"));
        let extra =
            parse_trace("{\"id\": 0, \"algo\": \"pr\", \"source\": 1}\n", None).unwrap_err();
        assert_eq!(extra.kind, TraceErrorKind::UnexpectedSource("pr"));
        let dup = parse_trace(
            "{\"id\": 0, \"algo\": \"cc\"}\n{\"id\": 0, \"algo\": \"pr\"}\n",
            None,
        )
        .unwrap_err();
        assert_eq!(dup.line, 2);
        assert_eq!(dup.kind, TraceErrorKind::DuplicateId(0));
        let oob =
            parse_trace("{\"id\": 0, \"algo\": \"bfs\", \"source\": 9}\n", Some(5)).unwrap_err();
        assert!(matches!(oob.kind, TraceErrorKind::SourceOutOfRange { .. }));
        let bad = parse_trace("{\"id\": -1, \"algo\": \"cc\"}\n", None).unwrap_err();
        assert!(matches!(
            bad.kind,
            TraceErrorKind::BadValue { field: "id", .. }
        ));
    }

    #[test]
    fn jsonl_round_trips() {
        let jobs = synthetic_mixed(12, 100, 42, 1_000, 3);
        let text = to_jsonl(&jobs);
        let back = parse_trace(&text, Some(100)).unwrap();
        assert_eq!(jobs, back);
    }

    #[test]
    fn mutating_trace_interleaves_jobs_and_mutations() {
        let text = "{\"id\": 1, \"algo\": \"cc\", \"submit_ns\": 50}\n\
                    {\"mutate\": \"insert\", \"src\": 1, \"dst\": 2, \"at\": 500, \"weight\": 3}\n\
                    {\"id\": 0, \"algo\": \"bfs\", \"source\": 2}\n\
                    {\"mutate\": \"delete\", \"src\": 3, \"dst\": 0, \"at\": 100}\n";
        let t = parse_trace_mutating(text, Some(10)).unwrap();
        assert_eq!(t.jobs.len(), 2);
        assert_eq!(t.jobs[0].id, 0, "jobs keep the canonical order");
        assert_eq!(
            t.mutations,
            vec![
                TraceMutation {
                    at_ns: 100,
                    mutation: Mutation::Delete { src: 3, dst: 0 }
                },
                TraceMutation {
                    at_ns: 500,
                    mutation: Mutation::Insert {
                        src: 1,
                        dst: 2,
                        weight: Some(3)
                    }
                },
            ],
            "mutations sort by at_ns"
        );
    }

    #[test]
    fn mutating_parser_keeps_the_job_checks() {
        // duplicate job ids are rejected with the offending line number,
        // exactly as in the plain parser
        let dup = "{\"id\": 0, \"algo\": \"cc\"}\n\
                   {\"mutate\": \"insert\", \"src\": 1, \"dst\": 2, \"at\": 5}\n\
                   {\"id\": 0, \"algo\": \"pr\"}\n";
        let err = parse_trace_mutating(dup, None).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.kind, TraceErrorKind::DuplicateId(0));

        let oob = parse_trace_mutating("{\"id\": 0, \"algo\": \"bfs\", \"source\": 9}\n", Some(5))
            .unwrap_err();
        assert!(matches!(oob.kind, TraceErrorKind::SourceOutOfRange { .. }));
    }

    #[test]
    fn mutation_field_rules_are_enforced() {
        let bad_op =
            parse_trace_mutating("{\"mutate\": \"upsert\", \"src\": 0, \"dst\": 1}\n", None)
                .unwrap_err();
        assert_eq!(
            bad_op.kind,
            TraceErrorKind::UnknownMutation("upsert".into())
        );

        let missing =
            parse_trace_mutating("{\"mutate\": \"insert\", \"dst\": 1}\n", None).unwrap_err();
        assert_eq!(missing.kind, TraceErrorKind::MissingField("src"));

        let weighted_delete = parse_trace_mutating(
            "{\"mutate\": \"delete\", \"src\": 0, \"dst\": 1, \"weight\": 2}\n",
            None,
        )
        .unwrap_err();
        assert_eq!(weighted_delete.kind, TraceErrorKind::UnexpectedWeight);

        let oob = parse_trace_mutating(
            "{\"mutate\": \"insert\", \"src\": 0, \"dst\": 9, \"at\": 1}\n",
            Some(5),
        )
        .unwrap_err();
        assert_eq!(
            oob.kind,
            TraceErrorKind::EndpointOutOfRange {
                vertex: 9,
                num_vertices: 5
            }
        );
        assert!(oob.to_string().contains("vertex 9 out of range"));
    }

    #[test]
    fn plain_parser_stays_strict_about_mutations() {
        let err = parse_trace(
            "{\"mutate\": \"insert\", \"src\": 0, \"dst\": 1, \"at\": 5}\n",
            None,
        )
        .unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, TraceErrorKind::Syntax(_)));
    }

    #[test]
    fn mutating_jsonl_round_trips() {
        let jobs = synthetic_mixed(9, 50, 4, 1_000, 3);
        let muts = synthetic_mutations(7, 50, 8, 2_000);
        let text = mutating_to_jsonl(&jobs, &muts);
        let back = parse_trace_mutating(&text, Some(50)).unwrap();
        assert_eq!(back.jobs, jobs);
        assert_eq!(back.mutations, muts);
        assert_eq!(
            synthetic_mutations(7, 50, 8, 2_000),
            muts,
            "generator is deterministic"
        );
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_mixed() {
        let a = synthetic_mixed(36, 1_000, 7, 10_000, 4);
        let b = synthetic_mixed(36, 1_000, 7, 10_000, 4);
        assert_eq!(a, b);
        assert!(a.iter().any(|j| j.kind == Algo::Sssp));
        assert!(a.iter().any(|j| j.kind == Algo::Bfs));
        assert!(a.iter().any(|j| !j.kind.single_source()));
        // bursts share a submit time
        assert_eq!(a[0].submit_ns, a[3].submit_ns);
        assert!(a[4].submit_ns > a[3].submit_ns);
    }
}
