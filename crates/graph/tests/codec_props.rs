//! Property tests for the delta–varint adjacency codec: round-trips over
//! adversarial CSR shapes (empty lists, one max-degree hub, duplicate
//! neighbors, vertex ids at the top of the u32 range) and decode of
//! corrupt byte streams, which must fail cleanly — never panic, never
//! over-allocate.

use proptest::prelude::*;

use ascetic_graph::compress::{
    decode_adjacency, decode_ranges, encode_adjacency, encode_ranges, encoded_len, read_varint,
    write_varint, EncodeEntry,
};
use ascetic_graph::Csr;

/// A sorted (duplicates allowed) adjacency list with ids spanning the
/// full u32 range, including u32::MAX.
fn arb_targets(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![any::<u32>(), Just(0u32), Just(u32::MAX)],
        0..max_len,
    )
    .prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// A small CSR built from per-vertex degree picks: some vertices empty,
/// some with duplicate neighbors (sorted, non-strictly monotone).
fn arb_csr() -> impl Strategy<Value = Csr> {
    (2usize..40, proptest::collection::vec(any::<u16>(), 0..200)).prop_map(|(n, picks)| {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, p) in picks.iter().enumerate() {
            // Cluster edges on a few hubs so empty lists and duplicates
            // both show up at every size.
            let v = (*p as usize) % n;
            adj[v].push((*p as u32 * 7 + i as u32) % n as u32);
            if p % 3 == 0 {
                let dup = *adj[v].last().unwrap();
                adj[v].push(dup);
            }
        }
        let mut offsets = vec![0u64];
        let mut targets = Vec::new();
        for list in &mut adj {
            list.sort_unstable();
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u64);
        }
        Csr::from_parts(offsets, targets, None)
    })
}

proptest! {
    /// LEB128 round-trips every u64 and reports its exact length.
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let (back, used) = read_varint(&buf).expect("own encoding decodes");
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, buf.len());
    }

    /// One adjacency list round-trips for any source vertex and any
    /// sorted target list — including empty lists, duplicate targets,
    /// and ids equal to u32::MAX — and `encoded_len` is exact.
    #[test]
    fn adjacency_round_trips(src in any::<u32>(), targets in arb_targets(64)) {
        let mut buf = Vec::new();
        let written = encode_adjacency(src, &targets, &mut buf);
        prop_assert_eq!(written, buf.len());
        prop_assert_eq!(written, encoded_len(src, &targets));
        let (back, used) = decode_adjacency(src, &buf).expect("own encoding decodes");
        prop_assert_eq!(back, targets);
        prop_assert_eq!(used, buf.len());
    }

    /// A single hub holding every edge of the graph — the max-degree
    /// shape that stresses the degree varint and the gap stream.
    #[test]
    fn max_degree_hub_round_trips(src in any::<u32>(), deg in 1usize..5_000) {
        let targets: Vec<u32> = (0..deg as u32).map(|i| i.saturating_mul(3)).collect();
        let mut buf = Vec::new();
        encode_adjacency(src, &targets, &mut buf);
        let (back, used) = decode_adjacency(src, &buf).expect("hub decodes");
        prop_assert_eq!(back, targets);
        prop_assert_eq!(used, buf.len());
    }

    /// Whole-graph streaming encode/decode round-trips on arbitrary CSRs
    /// (empty adjacency lists included), and the serial/parallel encoder
    /// agrees with per-list encoding.
    #[test]
    fn csr_stream_round_trips(g in arb_csr()) {
        let entries: Vec<EncodeEntry> = (0..g.num_vertices() as u32)
            .map(|v| (v, g.edge_range(v)))
            .collect();
        let mut stream = Vec::new();
        let written = encode_ranges(&g, &entries, &mut stream);
        prop_assert_eq!(written, stream.len());

        let mut reference = Vec::new();
        for e in &entries {
            let seg = &g.targets()[e.1.start as usize..e.1.end as usize];
            encode_adjacency(e.0, seg, &mut reference);
        }
        prop_assert_eq!(&stream, &reference, "streaming encode must match per-list encode");

        let srcs: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let lists = decode_ranges(&srcs, &stream).expect("own stream decodes");
        for (e, list) in entries.iter().zip(&lists) {
            let seg = &g.targets()[e.1.start as usize..e.1.end as usize];
            prop_assert_eq!(list.as_slice(), seg);
        }
    }

    /// Arbitrary bytes never panic the decoder: it returns `Some` only
    /// when the stream is well-formed, `None` otherwise.
    #[test]
    fn random_bytes_never_panic(src in any::<u32>(), bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Some((targets, used)) = decode_adjacency(src, &bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(targets.len() <= bytes.len(), "degree bounded by stream length");
        }
    }

    /// Flipping one byte of a valid stream either still decodes to some
    /// list or is rejected — it must never panic or read out of bounds.
    #[test]
    fn corrupted_stream_fails_cleanly(
        src in any::<u32>(),
        targets in arb_targets(32),
        flip_at in any::<usize>(),
        flip_mask in any::<u8>(),
    ) {
        let mut buf = Vec::new();
        encode_adjacency(src, &targets, &mut buf);
        if buf.is_empty() {
            return Ok(());
        }
        let idx = flip_at % buf.len();
        buf[idx] ^= flip_mask | 1;
        if let Some((_, used)) = decode_adjacency(src, &buf) {
            prop_assert!(used <= buf.len());
        }
    }

    /// Truncating a valid stream is always rejected by `decode_ranges`
    /// (the byte count no longer matches), without panicking.
    #[test]
    fn truncated_stream_is_rejected(src in any::<u32>(), targets in arb_targets(32), cut in 1usize..64) {
        let mut buf = Vec::new();
        encode_adjacency(src, &targets, &mut buf);
        if buf.len() <= 1 {
            return Ok(());
        }
        let cut = cut.min(buf.len() - 1);
        buf.truncate(buf.len() - cut);
        prop_assert!(decode_ranges(&[src], &buf).is_none(), "short stream must be rejected");
    }
}

/// A degree varint claiming more targets than the buffer holds is
/// rejected before any allocation is sized from it.
#[test]
fn huge_degree_claim_is_rejected() {
    let mut buf = Vec::new();
    write_varint(&mut buf, u64::MAX);
    assert!(decode_adjacency(0, &buf).is_none());
    let mut buf = Vec::new();
    write_varint(&mut buf, 1 << 40);
    buf.push(0);
    assert!(decode_adjacency(0, &buf).is_none());
}

/// An overlong varint (more than ten continuation bytes) is rejected.
#[test]
fn overlong_varint_is_rejected() {
    let buf = [0x80u8; 16];
    assert!(read_varint(&buf).is_none());
}
