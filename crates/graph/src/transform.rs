//! Graph transformations: transpose, symmetrization and induced subgraphs.
//!
//! Out-of-core frameworks frequently need the transpose (pull-based
//! algorithms, in-degree statistics, reverse reachability) and tooling
//! needs induced subgraphs (sampling large inputs down to test size);
//! these are the standard O(V+E) counting-sort constructions.

use crate::csr::Csr;
use crate::types::{VertexId, Weight};

/// Transpose: edge `(u, v, w)` becomes `(v, u, w)`. Neighbor lists come
/// out sorted (stable counting sort over sorted sources).
pub fn transpose(g: &Csr) -> Csr {
    let n = g.num_vertices();
    let mut deg = vec![0u64; n + 1];
    for &t in g.targets() {
        deg[t as usize + 1] += 1;
    }
    for i in 0..n {
        deg[i + 1] += deg[i];
    }
    let offsets = deg.clone();
    let mut cursor = deg;
    let m = g.num_edges() as usize;
    let mut targets = vec![0 as VertexId; m];
    let mut weights = g.weights().map(|_| vec![0 as Weight; m]);
    for v in 0..n as VertexId {
        let ws = g.weights();
        for (i, &t) in g.neighbors(v).iter().enumerate() {
            let pos = cursor[t as usize] as usize;
            cursor[t as usize] += 1;
            targets[pos] = v;
            if let (Some(out), Some(ws)) = (weights.as_mut(), ws) {
                out[pos] = ws[g.edge_range(v).start as usize + i];
            }
        }
    }
    Csr::from_parts(offsets, targets, weights)
}

/// Union of a graph with its transpose (makes a directed graph weakly
/// traversable in both directions; parallel duplicates are kept).
pub fn symmetrized(g: &Csr) -> Csr {
    let t = transpose(g);
    let n = g.num_vertices();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u64);
    let m = (g.num_edges() * 2) as usize;
    let mut targets = Vec::with_capacity(m);
    let mut weights = g.weights().map(|_| Vec::with_capacity(m));
    for v in 0..n as VertexId {
        // merge the two sorted lists
        let (a, b) = (g.neighbors(v), t.neighbors(v));
        let (aw, bw) = match (g.weights(), t.weights()) {
            (Some(_), Some(_)) => (Some(g.edge_weights(v)), Some(t.edge_weights(v))),
            _ => (None, None),
        };
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let take_a = j >= b.len() || (i < a.len() && a[i] <= b[j]);
            if take_a {
                targets.push(a[i]);
                if let (Some(w), Some(aw)) = (weights.as_mut(), aw) {
                    w.push(aw[i]);
                }
                i += 1;
            } else {
                targets.push(b[j]);
                if let (Some(w), Some(bw)) = (weights.as_mut(), bw) {
                    w.push(bw[j]);
                }
                j += 1;
            }
        }
        offsets.push(targets.len() as u64);
    }
    Csr::from_parts(offsets, targets, weights)
}

/// Induced subgraph on the vertex set `keep` (a sorted, deduplicated id
/// list); vertices are renumbered 0..keep.len() in `keep` order.
pub fn induced_subgraph(g: &Csr, keep: &[VertexId]) -> Csr {
    debug_assert!(
        keep.windows(2).all(|w| w[0] < w[1]),
        "keep must be sorted unique"
    );
    let n = g.num_vertices();
    let mut remap = vec![u32::MAX; n];
    for (new, &old) in keep.iter().enumerate() {
        remap[old as usize] = new as u32;
    }
    let mut offsets = Vec::with_capacity(keep.len() + 1);
    offsets.push(0u64);
    let mut targets = Vec::new();
    let mut weights = g.weights().map(|_| Vec::new());
    for &old in keep {
        match g.weights() {
            None => {
                for &t in g.neighbors(old) {
                    if remap[t as usize] != u32::MAX {
                        targets.push(remap[t as usize]);
                    }
                }
            }
            Some(_) => {
                for (&t, &w) in g.neighbors(old).iter().zip(g.edge_weights(old)) {
                    if remap[t as usize] != u32::MAX {
                        targets.push(remap[t as usize]);
                        weights.as_mut().unwrap().push(w);
                    }
                }
            }
        }
        offsets.push(targets.len() as u64);
    }
    Csr::from_parts(offsets, targets, weights)
}

/// Relabel vertices by descending out-degree: vertex 0 becomes the highest
/// degree hub, etc. Returns the relabeled graph plus `old_of_new` (the
/// original id of each new id, for translating results back).
///
/// Out-of-core systems benefit: with degree-descending ids, the *front* of
/// the edge array holds the hubs' adjacency — so a front-filled static
/// region pins exactly the data most likely to be active every iteration
/// (studied in `ablation_relabel`).
pub fn relabel_by_degree(g: &Csr) -> (Csr, Vec<VertexId>) {
    let n = g.num_vertices();
    let mut old_of_new: Vec<VertexId> = (0..n as VertexId).collect();
    old_of_new.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut new_of_old = vec![0 as VertexId; n];
    for (new, &old) in old_of_new.iter().enumerate() {
        new_of_old[old as usize] = new as VertexId;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u64);
    let m = g.num_edges() as usize;
    let mut targets = Vec::with_capacity(m);
    let mut weights = g.weights().map(|_| Vec::with_capacity(m));
    let mut scratch: Vec<(VertexId, Weight)> = Vec::new();
    for &old in &old_of_new {
        scratch.clear();
        match g.weights() {
            None => scratch.extend(
                g.neighbors(old)
                    .iter()
                    .map(|&t| (new_of_old[t as usize], 0)),
            ),
            Some(_) => scratch.extend(
                g.neighbors(old)
                    .iter()
                    .zip(g.edge_weights(old))
                    .map(|(&t, &w)| (new_of_old[t as usize], w)),
            ),
        }
        scratch.sort_unstable_by_key(|&(t, _)| t);
        for &(t, w) in &scratch {
            targets.push(t);
            if let Some(ws) = weights.as_mut() {
                ws.push(w);
            }
        }
        offsets.push(targets.len() as u64);
    }
    (Csr::from_parts(offsets, targets, weights), old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::uniform_graph;

    fn sample() -> Csr {
        let mut b = GraphBuilder::new(4).sort_neighbors(true);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(0, 2, 20);
        b.add_weighted_edge(2, 1, 30);
        b.add_weighted_edge(3, 0, 40);
        b.build()
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = sample();
        let t = transpose(&g);
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.edge_weights(1), &[10, 30]);
        assert_eq!(t.neighbors(0), &[3]);
        assert_eq!(t.edge_weights(0), &[40]);
        assert!(t.neighbors(3).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn double_transpose_is_identity() {
        let g = uniform_graph(200, 2_000, false, 5);
        assert_eq!(transpose(&transpose(&g)), g);
    }

    #[test]
    fn transpose_preserves_degree_sum() {
        let g = uniform_graph(100, 1_500, false, 9);
        let t = transpose(&g);
        assert_eq!(t.num_edges(), g.num_edges());
        // in-degree of v in g == out-degree of v in t
        for v in 0..100u32 {
            let indeg = g.iter_edges().filter(|&(_, d)| d == v).count() as u64;
            assert_eq!(t.degree(v), indeg);
        }
    }

    #[test]
    fn symmetrized_contains_both_directions() {
        let g = sample();
        let s = symmetrized(&g);
        assert_eq!(s.num_edges(), 2 * g.num_edges());
        assert!(s.neighbors(1).contains(&0));
        assert!(s.neighbors(0).contains(&1));
        s.validate().unwrap();
        // neighbor lists stay sorted
        for v in 0..4u32 {
            let nb = s.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] <= w[1]), "v{v}: {nb:?}");
        }
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = sample();
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        // edge 3->0 dropped; 0->1, 0->2, 2->1 kept
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.neighbors(0), &[1, 2]);
        assert_eq!(sub.edge_weights(2), &[30]);
        sub.validate().unwrap();
    }

    #[test]
    fn induced_subgraph_empty_keep() {
        let g = sample();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_vertices(), 0);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    fn induced_on_all_vertices_is_identity() {
        let g = uniform_graph(50, 400, false, 2);
        let all: Vec<u32> = (0..50).collect();
        assert_eq!(induced_subgraph(&g, &all), g);
    }

    #[test]
    fn relabel_sorts_degrees_descending() {
        let g = uniform_graph(200, 3_000, false, 8);
        let (rg, old_of_new) = relabel_by_degree(&g);
        assert_eq!(rg.num_edges(), g.num_edges());
        rg.validate().unwrap();
        for v in 1..200u32 {
            assert!(rg.degree(v - 1) >= rg.degree(v), "not sorted at {v}");
        }
        // permutation is a bijection
        let mut sorted = old_of_new.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &v)| i as u32 == v));
    }

    #[test]
    fn relabel_preserves_structure() {
        // edge (u, v) in the original must map to (new(u), new(v))
        let g = uniform_graph(100, 900, false, 3);
        let (rg, old_of_new) = relabel_by_degree(&g);
        let mut new_of_old = vec![0u32; 100];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old as usize] = new as u32;
        }
        for (u, v) in g.iter_edges() {
            let (nu, nv) = (new_of_old[u as usize], new_of_old[v as usize]);
            assert!(rg.neighbors(nu).contains(&nv), "{u}->{v} lost");
        }
    }

    #[test]
    fn relabel_keeps_weights_with_their_edges() {
        let g = sample();
        let (rg, old_of_new) = relabel_by_degree(&g);
        // vertex 0 (deg 2, weights 10/20) maps to new id 0 (highest degree)
        assert_eq!(old_of_new[0], 0);
        let mut w: Vec<u32> = rg.edge_weights(0).to_vec();
        w.sort_unstable();
        assert_eq!(w, vec![10, 20]);
    }
}
