#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic-graph — graph substrate
//!
//! Everything about graph *data* for the Ascetic reproduction:
//!
//! * [`csr`] — the Compressed Sparse Row representation all systems share
//!   (the paper: "The graph is presented in the CSR format").
//! * [`builder`] — edge-list → CSR construction (sorting, deduplication,
//!   symmetrization for undirected graphs, weight attachment for SSSP).
//! * [`edgelist`] — text and binary edge-list IO.
//! * [`generators`] — R-MAT, power-law social graphs and locality-heavy web
//!   graphs, used as scaled stand-ins for the paper's datasets (Table 3).
//! * [`chunks`] — the 16 KiB edge-chunk geometry the static region manages
//!   (paper §3.4: "we divide the graph dataset into 16KB chunks").
//! * [`partition`] — contiguous vertex-range edge partitions for the PT
//!   baseline (GraphReduce-style).
//! * [`patch`] — streaming edge mutations: a chunked, slack-padded CSR/CSC
//!   store supporting in-place insert/delete batches with chunk-split on
//!   overflow (the `ascetic-mutate` substrate).
//! * [`compress`] — delta–varint adjacency compression (transfer-volume
//!   ablation substrate).
//! * [`stats`] — degree statistics and distribution summaries.
//! * [`datasets`] — the scaled dataset catalog mirroring Table 3.

pub mod builder;
pub mod chunks;
pub mod compress;
pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod generators;
pub mod partition;
pub mod patch;
pub mod stats;
pub mod transform;
pub mod types;

pub use builder::GraphBuilder;
pub use chunks::{ChunkGeometry, GraphChunks};
pub use csr::Csr;
pub use datasets::{Dataset, DatasetId};
pub use patch::{GraphPatch, Mutation, PatchError, PatchableCsr};
pub use types::{EdgeCount, VertexId, Weight, INF_DIST};
