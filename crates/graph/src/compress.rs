//! Delta–varint compression of adjacency lists.
//!
//! Out-of-core systems are bandwidth-bound, so compressing edge payloads
//! before they cross PCIe is a classic lever (the WebGraph framework the
//! paper's UK/GS datasets come from is itself a compressed format). This
//! module provides the standard scheme: per adjacency list, sort targets,
//! delta-encode (first value zig-zag against the source id, subsequent
//! values as gaps) and write LEB128 varints.
//!
//! The scheme feeds the live compressed transfer path: [`encode_ranges`]
//! is a streaming encoder over `(vertex, edge-subrange)` entries — the
//! exact shape of an on-demand gather batch or a static-region chunk —
//! that appends into a caller-supplied buffer (typically one taken from an
//! `ascetic-par` scratch arena, so the steady state allocates nothing).
//! Large entry lists are encoded in parallel on the persistent pool: an
//! exact length pre-pass ([`encoded_len`]) computes each entry's offset,
//! then workers fill disjoint windows of the output, so the byte stream is
//! bit-identical at every thread count. The offline projection
//! ([`compression_stats`]) remains for the ablation benchmark.

use crate::csr::Csr;
use crate::types::VertexId;
use ascetic_par::{exclusive_scan_in_place, parallel_parts, parallel_ranges, with_scratch};

/// Entry lists at or below this size are encoded serially — parallel
/// dispatch overhead dwarfs the work.
const SERIAL_ENCODE_ENTRIES: usize = 64;

/// Zig-zag encode a signed value into an unsigned one.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zig-zag decode.
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a LEB128 varint.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns `(value, bytes_consumed)` or `None` on
/// truncated/overlong input.
#[inline]
pub fn read_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Encode the (sorted) adjacency list of `src` into `out`; returns the
/// encoded byte length. Format: `degree, zigzag(first - src), gap, gap...`
pub fn encode_adjacency(src: VertexId, targets: &[VertexId], out: &mut Vec<u8>) -> usize {
    debug_assert!(
        targets.windows(2).all(|w| w[0] <= w[1]),
        "targets must be sorted"
    );
    let start = out.len();
    write_varint(out, targets.len() as u64);
    let mut prev: i64 = src as i64;
    for (i, &t) in targets.iter().enumerate() {
        if i == 0 {
            write_varint(out, zigzag(t as i64 - prev));
        } else {
            write_varint(out, (t as i64 - prev) as u64);
        }
        prev = t as i64;
    }
    out.len() - start
}

/// Decode one adjacency list; returns `(targets, bytes_consumed)`.
pub fn decode_adjacency(src: VertexId, buf: &[u8]) -> Option<(Vec<VertexId>, usize)> {
    let (deg, mut pos) = read_varint(buf)?;
    // Every target costs at least one byte, so a degree claiming more
    // targets than there are bytes left is corrupt — reject it before
    // trusting it as an allocation size.
    if deg > (buf.len() - pos) as u64 {
        return None;
    }
    let mut targets = Vec::with_capacity(deg as usize);
    let mut prev: i64 = src as i64;
    for i in 0..deg {
        let (raw, used) = read_varint(&buf[pos..])?;
        pos += used;
        let t = if i == 0 {
            prev + unzigzag(raw)
        } else {
            prev + raw as i64
        };
        if t < 0 || t > u32::MAX as i64 {
            return None;
        }
        targets.push(t as VertexId);
        prev = t;
    }
    Some((targets, pos))
}

/// Byte length of `v` as a LEB128 varint, without writing it.
#[inline]
fn varint_len(v: u64) -> usize {
    (63 - (v | 1).leading_zeros() as usize) / 7 + 1
}

/// Exact encoded byte length of one adjacency segment — the length
/// pre-pass that lets [`encode_ranges`] place every entry before any
/// bytes are written.
pub fn encoded_len(src: VertexId, targets: &[VertexId]) -> usize {
    let mut n = varint_len(targets.len() as u64);
    let mut prev: i64 = src as i64;
    for (i, &t) in targets.iter().enumerate() {
        let v = if i == 0 {
            zigzag(t as i64 - prev)
        } else {
            (t as i64 - prev) as u64
        };
        n += varint_len(v);
        prev = t as i64;
    }
    n
}

/// One streaming-encode request: a source vertex plus an absolute edge
/// sub-range into the CSR edge array (the same shape as a gather entry or
/// a chunk's clipped vertex span).
pub type EncodeEntry = (VertexId, std::ops::Range<u64>);

/// Encode the target sub-ranges of `entries` as a concatenated
/// delta–varint stream appended to `out`; returns the bytes appended.
///
/// Each segment is self-contained (`degree, zigzag(first − src), gap...`),
/// so a partial adjacency list delivered by one entry decodes without the
/// rest of the list. Large entry lists run the length pre-pass and the
/// encode itself on the persistent pool, each worker filling a disjoint
/// window of `out` through its thread-local scratch arena; the resulting
/// bytes are identical at every host thread count.
///
/// # Panics
/// Panics if `g` is weighted — weights would ride along uncompressed, so
/// weighted payloads take the raw path.
pub fn encode_ranges(g: &Csr, entries: &[EncodeEntry], out: &mut Vec<u8>) -> usize {
    assert!(!g.is_weighted(), "compression covers unweighted payloads");
    let all = g.targets();
    let seg = |e: &EncodeEntry| &all[e.1.start as usize..e.1.end as usize];
    let start = out.len();

    if entries.len() <= SERIAL_ENCODE_ENTRIES {
        for e in entries {
            encode_adjacency(e.0, seg(e), out);
        }
        return out.len() - start;
    }

    // Pass 1: exact per-entry byte lengths, computed in parallel into
    // disjoint windows of `lens`.
    let worker_ranges = parallel_ranges(entries.len(), |_, r| r);
    let mut lens: Vec<u64> = vec![0; entries.len() + 1];
    {
        let mut parts: Vec<(&mut [u64], &[EncodeEntry])> = Vec::with_capacity(worker_ranges.len());
        let mut rest: &mut [u64] = &mut lens[..entries.len()];
        let mut consumed = 0usize;
        for wr in &worker_ranges {
            let (mine, tail) = std::mem::take(&mut rest).split_at_mut(wr.end - consumed);
            rest = tail;
            consumed = wr.end;
            parts.push((mine, &entries[wr.clone()]));
        }
        parallel_parts(parts, |_, (mine, es)| {
            for (l, e) in mine.iter_mut().zip(es) {
                *l = encoded_len(e.0, seg(e)) as u64;
            }
        });
    }
    let total = exclusive_scan_in_place(&mut lens) as usize;

    // Pass 2: encode each worker's entries into its disjoint byte window.
    out.resize(start + total, 0);
    {
        let mut parts: Vec<(&mut [u8], &[EncodeEntry])> = Vec::with_capacity(worker_ranges.len());
        let mut rest: &mut [u8] = &mut out[start..];
        let mut consumed = 0usize;
        for wr in &worker_ranges {
            let end_b = lens[wr.end] as usize;
            let (mine, tail) = std::mem::take(&mut rest).split_at_mut(end_b - consumed);
            rest = tail;
            consumed = end_b;
            parts.push((mine, &entries[wr.clone()]));
        }
        parallel_parts(parts, |_, (mine, es)| {
            with_scratch(|scratch| {
                let mut buf = scratch.take_u8();
                let mut w = 0usize;
                for e in es {
                    buf.clear();
                    encode_adjacency(e.0, seg(e), &mut buf);
                    mine[w..w + buf.len()].copy_from_slice(&buf);
                    w += buf.len();
                }
                debug_assert_eq!(w, mine.len(), "length pre-pass must be exact");
                scratch.put_u8(buf);
            });
        });
    }
    total
}

/// Decode a stream produced by [`encode_ranges`]; `srcs` lists the source
/// vertex of each segment in order. Returns per-segment target lists, or
/// `None` if the stream is corrupt or its length does not match.
pub fn decode_ranges(srcs: &[VertexId], buf: &[u8]) -> Option<Vec<Vec<VertexId>>> {
    let mut out = Vec::with_capacity(srcs.len());
    let mut pos = 0usize;
    for &s in srcs {
        let (targets, used) = decode_adjacency(s, &buf[pos..])?;
        pos += used;
        out.push(targets);
    }
    (pos == buf.len()).then_some(out)
}

/// Compress every adjacency list of `g` (unweighted graphs only — weights
/// would ride along uncompressed). Returns the byte stream plus per-vertex
/// offsets.
pub fn compress_graph(g: &Csr) -> (Vec<u8>, Vec<u64>) {
    assert!(!g.is_weighted(), "compression covers unweighted payloads");
    let mut bytes = Vec::new();
    let mut offsets = Vec::with_capacity(g.num_vertices() + 1);
    offsets.push(0u64);
    for v in 0..g.num_vertices() as VertexId {
        encode_adjacency(v, g.neighbors(v), &mut bytes);
        offsets.push(bytes.len() as u64);
    }
    (bytes, offsets)
}

/// Compression statistics for a graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompressionStats {
    /// Raw payload bytes (4 per edge).
    pub raw_bytes: u64,
    /// Compressed payload bytes.
    pub compressed_bytes: u64,
}

impl CompressionStats {
    /// Compression ratio (raw / compressed).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// Measure how much delta–varint coding would shrink `g`'s edge payload.
pub fn compression_stats(g: &Csr) -> CompressionStats {
    let (bytes, _) = compress_graph(g);
    CompressionStats {
        raw_bytes: g.num_edges() * 4,
        compressed_bytes: bytes.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{social_graph, uniform_graph, web_graph, SocialConfig, WebConfig};

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            buf.clear();
            write_varint(&mut buf, v);
            let (got, used) = read_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        assert!(read_varint(&buf).is_none());
        assert!(read_varint(&[]).is_none());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 7, 1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn adjacency_roundtrip() {
        let mut buf = Vec::new();
        let targets = [3u32, 10, 11, 500, 10_000];
        let n = encode_adjacency(100, &targets, &mut buf);
        assert_eq!(n, buf.len());
        let (got, used) = decode_adjacency(100, &buf).unwrap();
        assert_eq!(got, targets);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn empty_adjacency() {
        let mut buf = Vec::new();
        encode_adjacency(5, &[], &mut buf);
        let (got, used) = decode_adjacency(5, &buf).unwrap();
        assert!(got.is_empty());
        assert_eq!(used, buf.len());
    }

    #[test]
    fn whole_graph_roundtrip() {
        let g = uniform_graph(500, 5_000, false, 3);
        let (bytes, offsets) = compress_graph(&g);
        assert_eq!(offsets.len(), g.num_vertices() + 1);
        for v in 0..g.num_vertices() as u32 {
            let lo = offsets[v as usize] as usize;
            let (targets, used) = decode_adjacency(v, &bytes[lo..]).unwrap();
            assert_eq!(&targets[..], g.neighbors(v), "vertex {v}");
            assert_eq!(lo + used, offsets[v as usize + 1] as usize);
        }
    }

    #[test]
    fn locality_compresses_better_than_random() {
        // web graphs have tiny gaps (host locality) -> much better ratio
        let web = web_graph(&WebConfig::new(20_000, 160_000, 1));
        let soc = social_graph(&SocialConfig::new(20_000, 80_000, 1));
        let rw = compression_stats(&web).ratio();
        let rs = compression_stats(&soc).ratio();
        assert!(rw > 2.0, "web ratio {rw:.2}");
        assert!(rw > rs, "web {rw:.2} should beat social {rs:.2}");
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        let g = uniform_graph(400, 4_000, false, 5);
        let mut buf = Vec::new();
        for v in 0..g.num_vertices() as u32 {
            buf.clear();
            encode_adjacency(v, g.neighbors(v), &mut buf);
            assert_eq!(encoded_len(v, g.neighbors(v)), buf.len(), "vertex {v}");
        }
    }

    #[test]
    fn encode_ranges_matches_serial_per_entry_encoding() {
        let g = uniform_graph(2_000, 30_000, false, 11);
        // Split every vertex's list into sub-ranges so partial delivery is
        // exercised, and use enough entries to cross the parallel path.
        let mut entries: Vec<EncodeEntry> = Vec::new();
        for v in 0..g.num_vertices() as u32 {
            let r = g.edge_range(v);
            if r.is_empty() {
                entries.push((v, r));
            } else {
                let mid = r.start + (r.end - r.start) / 2;
                entries.push((v, r.start..mid));
                entries.push((v, mid..r.end));
            }
        }
        assert!(entries.len() > SERIAL_ENCODE_ENTRIES);
        let mut stream = Vec::new();
        let n = encode_ranges(&g, &entries, &mut stream);
        assert_eq!(n, stream.len());

        let mut expect = Vec::new();
        let all = g.targets();
        for e in &entries {
            encode_adjacency(e.0, &all[e.1.start as usize..e.1.end as usize], &mut expect);
        }
        assert_eq!(stream, expect, "parallel stitch must match serial order");

        let srcs: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let decoded = decode_ranges(&srcs, &stream).unwrap();
        for (e, targets) in entries.iter().zip(&decoded) {
            assert_eq!(
                &targets[..],
                &all[e.1.start as usize..e.1.end as usize],
                "segment for vertex {}",
                e.0
            );
        }
    }

    #[test]
    fn encode_ranges_appends_to_existing_buffer() {
        let g = uniform_graph(50, 300, false, 2);
        let entries: Vec<EncodeEntry> = vec![(0, g.edge_range(0)), (1, g.edge_range(1))];
        let mut buf = vec![0xAAu8; 7];
        let n = encode_ranges(&g, &entries, &mut buf);
        assert_eq!(buf.len(), 7 + n);
        assert!(buf[..7].iter().all(|&b| b == 0xAA), "prefix untouched");
    }

    #[test]
    fn decode_rejects_degree_larger_than_buffer() {
        // degree header claims 2^40 targets with no payload behind it;
        // the decoder must bail out instead of reserving that much.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1u64 << 40);
        assert!(decode_adjacency(0, &buf).is_none());
    }

    #[test]
    fn compression_never_explodes() {
        // worst case per edge: 5 varint bytes + degree header; sanity-bound it
        let g = uniform_graph(1_000, 8_000, false, 9);
        let s = compression_stats(&g);
        assert!(s.compressed_bytes < s.raw_bytes * 2);
    }
}
