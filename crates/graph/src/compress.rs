//! Delta–varint compression of adjacency lists.
//!
//! Out-of-core systems are bandwidth-bound, so compressing edge payloads
//! before they cross PCIe is a classic lever (the WebGraph framework the
//! paper's UK/GS datasets come from is itself a compressed format). This
//! module provides the standard scheme: per adjacency list, sort targets,
//! delta-encode (first value zig-zag against the source id, subsequent
//! values as gaps) and write LEB128 varints.
//!
//! The scheme is exposed as a substrate (plus an ablation benchmark
//! estimating the transfer savings it would buy each dataset); wiring it
//! into the simulated DMA path is left out deliberately — the paper's
//! systems all ship raw 4-byte targets, and the reproduction matches that.

use crate::csr::Csr;
use crate::types::VertexId;

/// Zig-zag encode a signed value into an unsigned one.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zig-zag decode.
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a LEB128 varint.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns `(value, bytes_consumed)` or `None` on
/// truncated/overlong input.
#[inline]
pub fn read_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Encode the (sorted) adjacency list of `src` into `out`; returns the
/// encoded byte length. Format: `degree, zigzag(first - src), gap, gap...`
pub fn encode_adjacency(src: VertexId, targets: &[VertexId], out: &mut Vec<u8>) -> usize {
    debug_assert!(
        targets.windows(2).all(|w| w[0] <= w[1]),
        "targets must be sorted"
    );
    let start = out.len();
    write_varint(out, targets.len() as u64);
    let mut prev: i64 = src as i64;
    for (i, &t) in targets.iter().enumerate() {
        if i == 0 {
            write_varint(out, zigzag(t as i64 - prev));
        } else {
            write_varint(out, (t as i64 - prev) as u64);
        }
        prev = t as i64;
    }
    out.len() - start
}

/// Decode one adjacency list; returns `(targets, bytes_consumed)`.
pub fn decode_adjacency(src: VertexId, buf: &[u8]) -> Option<(Vec<VertexId>, usize)> {
    let (deg, mut pos) = read_varint(buf)?;
    let mut targets = Vec::with_capacity(deg as usize);
    let mut prev: i64 = src as i64;
    for i in 0..deg {
        let (raw, used) = read_varint(&buf[pos..])?;
        pos += used;
        let t = if i == 0 {
            prev + unzigzag(raw)
        } else {
            prev + raw as i64
        };
        if t < 0 || t > u32::MAX as i64 {
            return None;
        }
        targets.push(t as VertexId);
        prev = t;
    }
    Some((targets, pos))
}

/// Compress every adjacency list of `g` (unweighted graphs only — weights
/// would ride along uncompressed). Returns the byte stream plus per-vertex
/// offsets.
pub fn compress_graph(g: &Csr) -> (Vec<u8>, Vec<u64>) {
    assert!(!g.is_weighted(), "compression covers unweighted payloads");
    let mut bytes = Vec::new();
    let mut offsets = Vec::with_capacity(g.num_vertices() + 1);
    offsets.push(0u64);
    for v in 0..g.num_vertices() as VertexId {
        encode_adjacency(v, g.neighbors(v), &mut bytes);
        offsets.push(bytes.len() as u64);
    }
    (bytes, offsets)
}

/// Compression statistics for a graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompressionStats {
    /// Raw payload bytes (4 per edge).
    pub raw_bytes: u64,
    /// Compressed payload bytes.
    pub compressed_bytes: u64,
}

impl CompressionStats {
    /// Compression ratio (raw / compressed).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// Measure how much delta–varint coding would shrink `g`'s edge payload.
pub fn compression_stats(g: &Csr) -> CompressionStats {
    let (bytes, _) = compress_graph(g);
    CompressionStats {
        raw_bytes: g.num_edges() * 4,
        compressed_bytes: bytes.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{social_graph, uniform_graph, web_graph, SocialConfig, WebConfig};

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            buf.clear();
            write_varint(&mut buf, v);
            let (got, used) = read_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        assert!(read_varint(&buf).is_none());
        assert!(read_varint(&[]).is_none());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 7, 1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn adjacency_roundtrip() {
        let mut buf = Vec::new();
        let targets = [3u32, 10, 11, 500, 10_000];
        let n = encode_adjacency(100, &targets, &mut buf);
        assert_eq!(n, buf.len());
        let (got, used) = decode_adjacency(100, &buf).unwrap();
        assert_eq!(got, targets);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn empty_adjacency() {
        let mut buf = Vec::new();
        encode_adjacency(5, &[], &mut buf);
        let (got, used) = decode_adjacency(5, &buf).unwrap();
        assert!(got.is_empty());
        assert_eq!(used, buf.len());
    }

    #[test]
    fn whole_graph_roundtrip() {
        let g = uniform_graph(500, 5_000, false, 3);
        let (bytes, offsets) = compress_graph(&g);
        assert_eq!(offsets.len(), g.num_vertices() + 1);
        for v in 0..g.num_vertices() as u32 {
            let lo = offsets[v as usize] as usize;
            let (targets, used) = decode_adjacency(v, &bytes[lo..]).unwrap();
            assert_eq!(&targets[..], g.neighbors(v), "vertex {v}");
            assert_eq!(lo + used, offsets[v as usize + 1] as usize);
        }
    }

    #[test]
    fn locality_compresses_better_than_random() {
        // web graphs have tiny gaps (host locality) -> much better ratio
        let web = web_graph(&WebConfig::new(20_000, 160_000, 1));
        let soc = social_graph(&SocialConfig::new(20_000, 80_000, 1));
        let rw = compression_stats(&web).ratio();
        let rs = compression_stats(&soc).ratio();
        assert!(rw > 2.0, "web ratio {rw:.2}");
        assert!(rw > rs, "web {rw:.2} should beat social {rs:.2}");
    }

    #[test]
    fn compression_never_explodes() {
        // worst case per edge: 5 varint bytes + degree header; sanity-bound it
        let g = uniform_graph(1_000, 8_000, false, 9);
        let s = compression_stats(&g);
        assert!(s.compressed_bytes < s.raw_bytes * 2);
    }
}
