//! Streaming edge mutations over a chunked, slack-padded CSR.
//!
//! A static [`Csr`] packs every row back to back, so a single edge insert
//! would shift the whole tail of the edge array. [`PatchableCsr`] keeps the
//! same logical graph in *vertex-ranged chunks with slack capacity*: an
//! insert shifts only within its chunk, and a chunk that runs out of slack
//! splits in two at a vertex boundary instead of relocating the world.
//! Applying a batch of [`Mutation`]s yields a [`GraphPatch`] — the record
//! the session layer uses to repair device residency and the repair engine
//! uses to seed its affected-vertex frontier — plus cheap `to_csr` /
//! `to_csc` materialization for the engines, which still consume plain
//! packed [`Csr`]s.
//!
//! ## Canonical patch semantics
//!
//! * An **insert** `(u, v, w)` appends the edge at the *end* of `u`'s row
//!   (rows are not kept sorted — the builder does not sort either), in
//!   batch order when a batch inserts several edges at one source.
//! * A **delete** `(u, v)` removes *every* parallel `(u, v)` edge; deleting
//!   an edge that does not exist is a counted no-op
//!   ([`GraphPatch::missing_deletes`]), never an error.
//! * The CSC mirror lists each row's sources ascending, equal sources in
//!   CSR row order — exactly [`Csr::transpose`]'s counting-sort order, so
//!   `to_csc()` stays byte-identical to `to_csr().transpose()` after any
//!   mutation sequence (pinned by tests and proptests).

use crate::chunks::ChunkGeometry;
use crate::csr::Csr;
use crate::types::{EdgeCount, VertexId, Weight};

/// One edge mutation. Vertex count is fixed — mutations add and remove
/// edges, never vertices (grow the vertex space at build time instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert edge `src → dst`. `weight` must be present exactly when the
    /// graph is weighted.
    Insert {
        /// Edge source.
        src: VertexId,
        /// Edge target.
        dst: VertexId,
        /// Edge weight (weighted graphs only).
        weight: Option<Weight>,
    },
    /// Delete every parallel `src → dst` edge.
    Delete {
        /// Edge source.
        src: VertexId,
        /// Edge target.
        dst: VertexId,
    },
}

impl Mutation {
    /// The mutation's source vertex.
    pub fn src(&self) -> VertexId {
        match *self {
            Mutation::Insert { src, .. } | Mutation::Delete { src, .. } => src,
        }
    }

    /// The mutation's target vertex.
    pub fn dst(&self) -> VertexId {
        match *self {
            Mutation::Insert { dst, .. } | Mutation::Delete { dst, .. } => dst,
        }
    }
}

/// Why a mutation batch was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatchErrorKind {
    /// A vertex id at or beyond the vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// An insert without a weight on a weighted graph.
    MissingWeight,
    /// An insert with a weight on an unweighted graph.
    UnexpectedWeight,
}

/// A rejected mutation batch: the 0-based index of the offending op plus
/// the reason. Batches are validated up front — a rejected batch mutates
/// nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatchError {
    /// 0-based index of the offending mutation within the batch.
    pub op: usize,
    /// What was wrong with it.
    pub kind: PatchErrorKind,
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            PatchErrorKind::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "mutation {}: vertex {vertex} out of range (graph has {num_vertices} vertices)",
                self.op
            ),
            PatchErrorKind::MissingWeight => write!(
                f,
                "mutation {}: insert on a weighted graph requires a weight",
                self.op
            ),
            PatchErrorKind::UnexpectedWeight => write!(
                f,
                "mutation {}: insert on an unweighted graph must not carry a weight",
                self.op
            ),
        }
    }
}

impl std::error::Error for PatchError {}

/// The record of one applied mutation batch: what changed, which vertices
/// it touched, and where the packed edge array first differs from the
/// pre-patch layout — everything the session needs to repair device
/// residency and the repair engine needs to seed its frontier.
#[derive(Clone, Debug, Default)]
pub struct GraphPatch {
    /// Edges inserted, in batch order.
    pub inserts: Vec<(VertexId, VertexId, Option<Weight>)>,
    /// Edges actually removed — one entry per parallel edge, carrying the
    /// removed edge's weight (SSSP's invalidate pass needs it for the
    /// tight-edge test).
    pub deletes: Vec<(VertexId, VertexId, Option<Weight>)>,
    /// Deletes that matched nothing (counted no-ops).
    pub missing_deletes: u64,
    /// Sorted, deduplicated endpoints of every applied mutation.
    pub touched: Vec<VertexId>,
    /// Smallest global edge index (in pre-patch packed-CSR coordinates, a
    /// conservative lower bound) whose content or position changed. Equal
    /// to the pre-patch edge count when the batch changed nothing.
    pub first_dirty_edge: EdgeCount,
    /// Chunk splits the batch forced in the patchable store.
    pub splits: u32,
}

impl GraphPatch {
    /// Number of edge-level changes (inserted plus actually-removed edges).
    pub fn delta_edges(&self) -> u64 {
        (self.inserts.len() + self.deletes.len()) as u64
    }

    /// Whether the batch changed nothing at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// One vertex-ranged chunk of the patchable store: a mini-CSR over the
/// vertices `[first_vertex, first_vertex + rows.len() - 1)` with `slack`
/// spare edge capacity.
#[derive(Clone, Debug)]
struct StoreChunk {
    /// First vertex covered (inclusive).
    first_vertex: usize,
    /// Local row offsets; `rows[0] == 0`, `rows.last() == targets.len()`.
    rows: Vec<u32>,
    /// Edge targets of the covered rows, packed.
    targets: Vec<VertexId>,
    /// Parallel weights (weighted graphs).
    weights: Option<Vec<Weight>>,
    /// Edge capacity before this chunk must split.
    cap: usize,
}

impl StoreChunk {
    fn num_rows(&self) -> usize {
        self.rows.len() - 1
    }

    fn len(&self) -> usize {
        self.targets.len()
    }
}

/// A chunked CSR (or CSC) with per-chunk slack, supporting in-place edge
/// inserts and deletes.
#[derive(Clone, Debug)]
struct PatchStore {
    weighted: bool,
    chunks: Vec<StoreChunk>,
    chunk_of_vertex: Vec<u32>,
    /// Slack edges granted to fresh chunks (build and split).
    slack: usize,
    splits: u32,
}

impl PatchStore {
    /// Chunk `g`'s rows into runs of at most `chunk_edges` edges (always at
    /// least one vertex per chunk), each with `slack` spare capacity.
    fn from_csr(g: &Csr, chunk_edges: usize, slack: usize) -> PatchStore {
        let n = g.num_vertices();
        let chunk_edges = chunk_edges.max(1);
        let mut chunks = Vec::new();
        let mut chunk_of_vertex = vec![0u32; n];
        let mut v = 0usize;
        while v < n {
            let first_vertex = v;
            let mut rows = vec![0u32];
            let mut targets = Vec::new();
            let mut weights = g.weights().map(|_| Vec::new());
            loop {
                let tr = g.neighbors(v as VertexId);
                targets.extend_from_slice(tr);
                if let Some(w) = weights.as_mut() {
                    w.extend_from_slice(g.edge_weights(v as VertexId));
                }
                rows.push(targets.len() as u32);
                chunk_of_vertex[v] = chunks.len() as u32;
                v += 1;
                if v >= n || targets.len() >= chunk_edges {
                    break;
                }
            }
            let cap = targets.len() + slack;
            chunks.push(StoreChunk {
                first_vertex,
                rows,
                targets,
                weights,
                cap,
            });
        }
        if chunks.is_empty() {
            // zero-vertex graph: one empty chunk keeps the invariants
            chunks.push(StoreChunk {
                first_vertex: 0,
                rows: vec![0],
                targets: Vec::new(),
                weights: g.weights().map(|_| Vec::new()),
                cap: slack,
            });
        }
        PatchStore {
            weighted: g.is_weighted(),
            chunks,
            chunk_of_vertex,
            slack,
            splits: 0,
        }
    }

    fn num_vertices(&self) -> usize {
        self.chunk_of_vertex.len()
    }

    fn num_edges(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }

    fn row(&self, v: VertexId) -> &[VertexId] {
        let c = &self.chunks[self.chunk_of_vertex[v as usize] as usize];
        let r = v as usize - c.first_vertex;
        &c.targets[c.rows[r] as usize..c.rows[r + 1] as usize]
    }

    fn row_len(&self, v: VertexId) -> usize {
        let c = &self.chunks[self.chunk_of_vertex[v as usize] as usize];
        let r = v as usize - c.first_vertex;
        (c.rows[r + 1] - c.rows[r]) as usize
    }

    /// Global packed-CSR offset of `v`'s row start, in the store's current
    /// state.
    fn global_row_start(&self, v: VertexId) -> u64 {
        let ci = self.chunk_of_vertex[v as usize] as usize;
        let base: u64 = self.chunks[..ci].iter().map(|c| c.len() as u64).sum();
        let c = &self.chunks[ci];
        base + c.rows[v as usize - c.first_vertex] as u64
    }

    /// Insert `(t, w)` at position `pos` within `v`'s row, splitting (or,
    /// for single-vertex chunks, growing) on capacity overflow.
    fn insert(&mut self, v: VertexId, pos: usize, t: VertexId, w: Option<Weight>) {
        debug_assert_eq!(w.is_some(), self.weighted);
        let mut ci = self.chunk_of_vertex[v as usize] as usize;
        if self.chunks[ci].len() >= self.chunks[ci].cap {
            if self.chunks[ci].num_rows() > 1 {
                self.split_chunk(ci);
                ci = self.chunk_of_vertex[v as usize] as usize;
            } else {
                // one giant row: nothing to split at, grow the slack
                let grow = self.slack.max(4);
                self.chunks[ci].cap += grow;
            }
        }
        let c = &mut self.chunks[ci];
        let r = v as usize - c.first_vertex;
        let at = c.rows[r] as usize + pos;
        debug_assert!(at <= c.rows[r + 1] as usize, "insert past row end");
        c.targets.insert(at, t);
        if let Some(ws) = c.weights.as_mut() {
            ws.insert(at, w.expect("weighted store insert without weight"));
        }
        for o in &mut c.rows[r + 1..] {
            *o += 1;
        }
    }

    /// Remove every entry equal to `t` from `v`'s row. Returns the removed
    /// weights (empty when nothing matched) and the position of the first
    /// removal within the row.
    fn remove_matching(
        &mut self,
        v: VertexId,
        t: VertexId,
    ) -> (Vec<Option<Weight>>, Option<usize>) {
        let ci = self.chunk_of_vertex[v as usize] as usize;
        let c = &mut self.chunks[ci];
        let r = v as usize - c.first_vertex;
        let (start, end) = (c.rows[r] as usize, c.rows[r + 1] as usize);
        let mut removed = Vec::new();
        let mut first = None;
        let mut i = end;
        // walk backwards so earlier removal positions stay valid
        while i > start {
            i -= 1;
            if c.targets[i] == t {
                c.targets.remove(i);
                let w = c.weights.as_mut().map(|ws| ws.remove(i));
                removed.push(w);
                first = Some(i - start);
            }
        }
        removed.reverse();
        let k = removed.len() as u32;
        if k > 0 {
            for o in &mut c.rows[r + 1..] {
                *o -= k;
            }
        }
        (removed, first)
    }

    /// Split chunk `ci` at a vertex boundary near its edge midpoint. The
    /// chunk must cover at least two vertices.
    fn split_chunk(&mut self, ci: usize) {
        let c = &self.chunks[ci];
        let nrows = c.num_rows();
        debug_assert!(nrows > 1, "cannot split a single-vertex chunk");
        let half = (c.len() / 2) as u32;
        // first row boundary at or past the midpoint, clamped interior
        let mut cut = c.rows[1..nrows].partition_point(|&o| o < half) + 1;
        cut = cut.clamp(1, nrows - 1);
        let cut_off = c.rows[cut] as usize;

        let c = &mut self.chunks[ci];
        let hi_targets = c.targets.split_off(cut_off);
        let hi_weights = c.weights.as_mut().map(|ws| ws.split_off(cut_off));
        let hi_rows: Vec<u32> = c.rows[cut..].iter().map(|&o| o - cut_off as u32).collect();
        c.rows.truncate(cut + 1);
        c.cap = c.targets.len() + self.slack;
        let hi = StoreChunk {
            first_vertex: c.first_vertex + cut,
            cap: hi_targets.len() + self.slack,
            rows: hi_rows,
            targets: hi_targets,
            weights: hi_weights,
        };
        let hi_first = hi.first_vertex;
        let hi_rows_n = hi.num_rows();
        self.chunks.insert(ci + 1, hi);
        // renumber chunk ids for the split-off vertices and everything after
        for v in hi_first..hi_first + hi_rows_n {
            self.chunk_of_vertex[v] = (ci + 1) as u32;
        }
        for v in self.chunk_of_vertex[hi_first + hi_rows_n..].iter_mut() {
            *v += 1;
        }
        self.splits += 1;
    }

    /// Materialize a packed [`Csr`].
    fn to_csr(&self) -> Csr {
        let n = self.num_vertices();
        let m = self.num_edges() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(m);
        let mut weights = if self.weighted {
            Some(Vec::with_capacity(m))
        } else {
            None
        };
        offsets.push(0u64);
        let mut total = 0u64;
        for c in &self.chunks {
            for r in 0..c.num_rows() {
                total += (c.rows[r + 1] - c.rows[r]) as u64;
                offsets.push(total);
            }
            targets.extend_from_slice(&c.targets);
            if let (Some(out), Some(ws)) = (weights.as_mut(), c.weights.as_ref()) {
                out.extend_from_slice(ws);
            }
        }
        debug_assert_eq!(offsets.len(), n + 1);
        Csr::from_parts(offsets, targets, weights)
    }
}

/// A mutable graph: a chunked CSR with slack, plus an optional CSC mirror
/// kept in lockstep (built when pull-direction engines need the transpose).
pub struct PatchableCsr {
    csr: PatchStore,
    csc: Option<PatchStore>,
    num_vertices: usize,
    weighted: bool,
}

/// Default edge count per patchable chunk (matches the paper's 16 KiB
/// chunks at 4 B/edge).
pub const DEFAULT_CHUNK_EDGES: usize = 4096;
/// Default slack edges granted per chunk.
pub const DEFAULT_SLACK_EDGES: usize = 64;

impl PatchableCsr {
    /// Wrap `g` in a patchable store without a CSC mirror.
    pub fn new(g: &Csr, chunk_edges: usize, slack_edges: usize) -> PatchableCsr {
        PatchableCsr {
            csr: PatchStore::from_csr(g, chunk_edges, slack_edges),
            csc: None,
            num_vertices: g.num_vertices(),
            weighted: g.is_weighted(),
        }
    }

    /// Wrap `g` with a CSC mirror patched in lockstep — for sessions whose
    /// direction policy ever pulls.
    pub fn with_mirror(g: &Csr, chunk_edges: usize, slack_edges: usize) -> PatchableCsr {
        let mut p = Self::new(g, chunk_edges, slack_edges);
        p.csc = Some(PatchStore::from_csr(
            &g.transpose(),
            chunk_edges,
            slack_edges,
        ));
        p
    }

    /// Default-geometry store ([`DEFAULT_CHUNK_EDGES`] /
    /// [`DEFAULT_SLACK_EDGES`]), mirror included iff `mirror`.
    pub fn with_defaults(g: &Csr, mirror: bool) -> PatchableCsr {
        if mirror {
            Self::with_mirror(g, DEFAULT_CHUNK_EDGES, DEFAULT_SLACK_EDGES)
        } else {
            Self::new(g, DEFAULT_CHUNK_EDGES, DEFAULT_SLACK_EDGES)
        }
    }

    /// Vertex count (fixed for the store's lifetime).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Current edge count.
    pub fn num_edges(&self) -> u64 {
        self.csr.num_edges()
    }

    /// Whether edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Whether a CSC mirror is maintained.
    pub fn has_mirror(&self) -> bool {
        self.csc.is_some()
    }

    /// Chunk splits performed so far (CSR side).
    pub fn splits(&self) -> u32 {
        self.csr.splits
    }

    /// Validate a batch without mutating anything.
    fn validate(&self, ops: &[Mutation]) -> Result<(), PatchError> {
        let n = self.num_vertices;
        for (i, op) in ops.iter().enumerate() {
            for v in [op.src(), op.dst()] {
                if v as usize >= n {
                    return Err(PatchError {
                        op: i,
                        kind: PatchErrorKind::VertexOutOfRange {
                            vertex: v,
                            num_vertices: n,
                        },
                    });
                }
            }
            if let Mutation::Insert { weight, .. } = op {
                if self.weighted && weight.is_none() {
                    return Err(PatchError {
                        op: i,
                        kind: PatchErrorKind::MissingWeight,
                    });
                }
                if !self.weighted && weight.is_some() {
                    return Err(PatchError {
                        op: i,
                        kind: PatchErrorKind::UnexpectedWeight,
                    });
                }
            }
        }
        Ok(())
    }

    /// Apply one mutation batch in order. Returns the [`GraphPatch`]
    /// record; a rejected batch (bad vertex, weight mismatch) mutates
    /// nothing.
    pub fn apply(&mut self, ops: &[Mutation]) -> Result<GraphPatch, PatchError> {
        self.validate(ops)?;
        let splits_before = self.csr.splits;
        let mut patch = GraphPatch {
            first_dirty_edge: self.csr.num_edges(),
            ..GraphPatch::default()
        };
        let mut touched = Vec::new();
        for op in ops {
            match *op {
                Mutation::Insert { src, dst, weight } => {
                    let dirty = self.csr.global_row_start(src) + self.csr.row_len(src) as u64;
                    patch.first_dirty_edge = patch.first_dirty_edge.min(dirty);
                    let pos = self.csr.row_len(src);
                    self.csr.insert(src, pos, dst, weight);
                    if let Some(csc) = self.csc.as_mut() {
                        // sources ascending; equal sources in CSR row
                        // order, and the CSR appended at the row end
                        let pos = csc.row(dst).partition_point(|&u| u <= src);
                        csc.insert(dst, pos, src, weight);
                    }
                    patch.inserts.push((src, dst, weight));
                    touched.push(src);
                    touched.push(dst);
                }
                Mutation::Delete { src, dst } => {
                    let row_start = self.csr.global_row_start(src);
                    let (removed, first) = self.csr.remove_matching(src, dst);
                    if removed.is_empty() {
                        patch.missing_deletes += 1;
                        continue;
                    }
                    patch.first_dirty_edge = patch
                        .first_dirty_edge
                        .min(row_start + first.unwrap_or(0) as u64);
                    if let Some(csc) = self.csc.as_mut() {
                        let (mirror_removed, _) = csc.remove_matching(dst, src);
                        debug_assert_eq!(mirror_removed.len(), removed.len(), "mirror divergence");
                    }
                    for w in removed {
                        patch.deletes.push((src, dst, w));
                    }
                    touched.push(src);
                    touched.push(dst);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        patch.touched = touched;
        patch.splits = self.csr.splits - splits_before;
        Ok(patch)
    }

    /// Materialize the packed CSR.
    pub fn to_csr(&self) -> Csr {
        self.csr.to_csr()
    }

    /// Materialize the packed CSC mirror (when maintained).
    pub fn to_csc(&self) -> Option<Csr> {
        self.csc.as_ref().map(|s| s.to_csr())
    }

    /// The packed CSR's chunk geometry for `chunk_bytes`-byte device
    /// chunks — what a session bound to [`PatchableCsr::to_csr`] sees.
    pub fn geometry(&self, chunk_bytes: usize) -> ChunkGeometry {
        ChunkGeometry::with_chunk_bytes(&self.to_csr(), chunk_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::uniform_graph;

    /// Rebuild-from-scratch oracle applying the canonical semantics to an
    /// edge list.
    fn oracle_apply(g: &Csr, batches: &[Vec<Mutation>]) -> Csr {
        let n = g.num_vertices();
        let mut rows: Vec<Vec<(VertexId, Option<Weight>)>> = (0..n)
            .map(|v| {
                let ts = g.neighbors(v as VertexId);
                match g.weights() {
                    Some(_) => ts
                        .iter()
                        .zip(g.edge_weights(v as VertexId))
                        .map(|(&t, &w)| (t, Some(w)))
                        .collect(),
                    None => ts.iter().map(|&t| (t, None)).collect(),
                }
            })
            .collect();
        for batch in batches {
            for op in batch {
                match *op {
                    Mutation::Insert { src, dst, weight } => {
                        rows[src as usize].push((dst, weight));
                    }
                    Mutation::Delete { src, dst } => {
                        rows[src as usize].retain(|&(t, _)| t != dst);
                    }
                }
            }
        }
        let mut offsets = vec![0u64];
        let mut targets = Vec::new();
        let mut weights = g.weights().map(|_| Vec::new());
        for row in &rows {
            for &(t, w) in row {
                targets.push(t);
                if let Some(ws) = weights.as_mut() {
                    ws.push(w.unwrap());
                }
            }
            offsets.push(targets.len() as u64);
        }
        Csr::from_parts(offsets, targets, weights)
    }

    fn assert_csr_eq(a: &Csr, b: &Csr) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.offsets(), b.offsets(), "offsets differ");
        assert_eq!(a.targets(), b.targets(), "targets differ");
        assert_eq!(a.weights(), b.weights(), "weights differ");
    }

    #[test]
    fn insert_appends_at_row_end() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 3);
        b.add_edge(0, 1);
        let g = b.build();
        let mut p = PatchableCsr::new(&g, 4, 2);
        let patch = p
            .apply(&[Mutation::Insert {
                src: 0,
                dst: 2,
                weight: None,
            }])
            .unwrap();
        let out = p.to_csr();
        out.validate().expect("patched CSR invariants");
        // rows keep builder insertion order; the insert lands at the end
        assert_eq!(out.neighbors(0), &[3, 1, 2]);
        assert_eq!(patch.inserts, vec![(0, 2, None)]);
        assert_eq!(patch.touched, vec![0, 2]);
        assert_eq!(out.num_edges(), 3);
    }

    #[test]
    fn delete_removes_all_parallel_edges_and_counts_misses() {
        let mut b = GraphBuilder::new(3).dedup(false);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        let g = b.build();
        let mut p = PatchableCsr::new(&g, 8, 2);
        let patch = p
            .apply(&[
                Mutation::Delete { src: 0, dst: 1 },
                Mutation::Delete { src: 2, dst: 0 },
            ])
            .unwrap();
        assert_eq!(patch.deletes.len(), 2, "both parallel copies removed");
        assert_eq!(patch.missing_deletes, 1);
        let out = p.to_csr();
        out.validate().expect("patched CSR invariants");
        assert_eq!(out.neighbors(0), &[2]);
    }

    #[test]
    fn weighted_patch_keeps_weights_aligned() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(0, 2, 20);
        b.add_weighted_edge(1, 2, 30);
        let g = b.build();
        let mut p = PatchableCsr::with_mirror(&g, 2, 1);
        p.apply(&[
            Mutation::Insert {
                src: 2,
                dst: 0,
                weight: Some(5),
            },
            Mutation::Delete { src: 0, dst: 1 },
        ])
        .unwrap();
        let out = p.to_csr();
        out.validate().expect("patched CSR invariants");
        assert_eq!(out.neighbors(0), &[2]);
        assert_eq!(out.edge_weights(0), &[20]);
        assert_eq!(out.neighbors(2), &[0]);
        assert_eq!(out.edge_weights(2), &[5]);
        let csc = p.to_csc().unwrap();
        csc.validate().expect("patched CSC invariants");
        assert_csr_eq(&csc, &out.transpose());
    }

    #[test]
    fn rejects_bad_batches_without_mutating() {
        let g = uniform_graph(10, 40, false, 1);
        let mut p = PatchableCsr::new(&g, 8, 2);
        let before = p.to_csr();
        let err = p
            .apply(&[
                Mutation::Insert {
                    src: 1,
                    dst: 2,
                    weight: None,
                },
                Mutation::Delete { src: 3, dst: 10 },
            ])
            .unwrap_err();
        assert_eq!(err.op, 1);
        assert!(matches!(
            err.kind,
            PatchErrorKind::VertexOutOfRange { vertex: 10, .. }
        ));
        let err = p
            .apply(&[Mutation::Insert {
                src: 0,
                dst: 1,
                weight: Some(7),
            }])
            .unwrap_err();
        assert_eq!(err.kind, PatchErrorKind::UnexpectedWeight);
        assert_csr_eq(&p.to_csr(), &before);
        let gw = crate::datasets::weighted_variant(&g);
        let mut pw = PatchableCsr::new(&gw, 8, 2);
        let err = pw
            .apply(&[Mutation::Insert {
                src: 0,
                dst: 1,
                weight: None,
            }])
            .unwrap_err();
        assert_eq!(err.kind, PatchErrorKind::MissingWeight);
    }

    #[test]
    fn chunk_split_on_overflow_preserves_content() {
        // tiny chunks + zero slack force splits immediately
        let g = uniform_graph(50, 300, false, 3);
        let mut p = PatchableCsr::new(&g, 4, 0);
        let mut batches = Vec::new();
        let mut rng = 0x1234_5678_u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..8 {
            let batch: Vec<Mutation> = (0..20)
                .map(|_| Mutation::Insert {
                    src: (next() % 50) as VertexId,
                    dst: (next() % 50) as VertexId,
                    weight: None,
                })
                .collect();
            p.apply(&batch).unwrap();
            batches.push(batch);
        }
        assert!(p.splits() > 0, "zero-slack chunks must have split");
        let out = p.to_csr();
        out.validate().expect("patched CSR invariants");
        assert_csr_eq(&out, &oracle_apply(&g, &batches));
    }

    #[test]
    fn single_vertex_hub_chunk_grows_instead_of_splitting() {
        // one hub owns a whole chunk; splitting is impossible, it must grow
        let mut b = GraphBuilder::new(8);
        for t in 1..8u32 {
            b.add_edge(0, t);
        }
        let g = b.build();
        let mut p = PatchableCsr::new(&g, 4, 0);
        let batch: Vec<Mutation> = (1..8)
            .map(|t| Mutation::Insert {
                src: 0,
                dst: t,
                weight: None,
            })
            .collect();
        p.apply(&batch).unwrap();
        let out = p.to_csr();
        out.validate().expect("patched CSR invariants");
        assert_eq!(out.degree(0), 14);
    }

    #[test]
    fn mirror_tracks_transpose_through_churn() {
        let g = uniform_graph(40, 250, false, 9);
        let mut p = PatchableCsr::with_mirror(&g, 8, 2);
        let mut rng = 0xDEAD_BEEF_u64;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..6 {
            let batch: Vec<Mutation> = (0..15)
                .map(|i| {
                    let (s, d) = ((next() % 40) as VertexId, (next() % 40) as VertexId);
                    if i % 3 == 0 {
                        Mutation::Delete { src: s, dst: d }
                    } else {
                        Mutation::Insert {
                            src: s,
                            dst: d,
                            weight: None,
                        }
                    }
                })
                .collect();
            p.apply(&batch).unwrap();
            let csr = p.to_csr();
            csr.validate().expect("patched CSR invariants");
            let csc = p.to_csc().unwrap();
            csc.validate().expect("patched CSC invariants");
            assert_csr_eq(&csc, &csr.transpose());
        }
    }

    #[test]
    fn first_dirty_edge_is_conservative() {
        let mut b = GraphBuilder::new(6);
        for v in 0..5u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let before = g.clone();
        let mut p = PatchableCsr::new(&g, 2, 2);
        let patch = p
            .apply(&[Mutation::Insert {
                src: 3,
                dst: 0,
                weight: None,
            }])
            .unwrap();
        let after = p.to_csr();
        // everything before first_dirty_edge must be byte-identical
        let k = patch.first_dirty_edge as usize;
        assert_eq!(&before.targets()[..k], &after.targets()[..k]);
        assert!(k <= 4, "row 3 starts at edge 3, ends at 4");
        // an empty batch leaves the dirty mark at the edge count
        let patch = p.apply(&[]).unwrap();
        assert!(patch.is_empty());
        assert_eq!(patch.first_dirty_edge, after.num_edges());
    }

    #[test]
    fn self_loops_and_isolated_vertices() {
        let mut b = GraphBuilder::new(5).dedup(false);
        b.add_edge(1, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let mut p = PatchableCsr::with_mirror(&g, 2, 1);
        let batches = vec![vec![
            Mutation::Insert {
                src: 4,
                dst: 4,
                weight: None,
            },
            Mutation::Delete { src: 1, dst: 1 },
            Mutation::Insert {
                src: 0,
                dst: 4,
                weight: None,
            },
        ]];
        p.apply(&batches[0]).unwrap();
        let out = p.to_csr();
        out.validate().expect("patched CSR invariants");
        assert_csr_eq(&out, &oracle_apply(&g, &batches));
        assert_csr_eq(&p.to_csc().unwrap(), &out.transpose());
    }
}
