//! Contiguous vertex-range edge partitions.
//!
//! The PT baseline (GraphReduce-style; paper Figure 1) splits the graph into
//! partitions that each fit in GPU memory, then streams active partitions
//! through the device every iteration. Partitions are contiguous vertex
//! ranges so each one's edge data is one contiguous CSR slice — a single
//! bulk PCIe transfer.

use crate::csr::Csr;
use crate::types::VertexId;

/// A contiguous vertex-range partition of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Vertices whose adjacency lists live in this partition.
    pub vertices: std::ops::Range<VertexId>,
    /// Edge-index range (into the CSR edge array).
    pub edges: std::ops::Range<u64>,
}

impl Partition {
    /// Number of edges in the partition.
    pub fn num_edges(&self) -> u64 {
        self.edges.end - self.edges.start
    }
}

/// Split `g` into contiguous partitions whose edge payload each fits in
/// `max_bytes`. A single vertex whose adjacency list alone exceeds the
/// budget gets its own (oversized) partition — the PT runner then streams
/// it in slices.
///
/// # Panics
/// Panics if `max_bytes` is smaller than one edge entry.
pub fn partition_by_bytes(g: &Csr, max_bytes: u64) -> Vec<Partition> {
    let bpe = g.bytes_per_edge() as u64;
    assert!(max_bytes >= bpe, "partition budget below one edge");
    let max_edges = max_bytes / bpe;
    let n = g.num_vertices();
    let mut parts = Vec::new();
    let mut vstart: usize = 0;
    while vstart < n {
        let estart = g.offsets()[vstart];
        // furthest vend with offsets[vend] - estart <= max_edges
        let limit = estart + max_edges;
        // furthest end vertex whose cumulative edge offset stays within the
        // budget: count the offsets in (vstart, n] that are <= limit
        let tail = &g.offsets()[vstart + 1..=n];
        let mut vend = vstart + tail.partition_point(|&o| o <= limit);
        if vend == vstart {
            vend = vstart + 1; // oversized single-vertex partition
        }
        vend = vend.min(n);
        parts.push(Partition {
            vertices: vstart as VertexId..vend as VertexId,
            edges: g.offsets()[vstart]..g.offsets()[vend],
        });
        vstart = vend;
    }
    debug_assert_eq!(validate_partitions(g, &parts), Ok(()));
    parts
}

/// Split `g` into (at most) `n` contiguous partitions with balanced edge
/// counts — the fleet sharding primitive. Boundaries land where the
/// cumulative edge count crosses `i * num_edges / n`, so every shard's
/// edge volume is within one adjacency list of the ideal `E/n`. Trailing
/// zero-degree vertices fold into the last shard. Degenerate inputs
/// (fewer vertices than shards, hub vertices holding most of the edge
/// array) yield fewer than `n` partitions rather than empty ones; an
/// empty graph yields one whole-range partition when it has vertices and
/// none otherwise.
pub fn partition_even_edges(g: &Csr, n: usize) -> Vec<Partition> {
    assert!(n > 0, "cannot split into zero partitions");
    let nv = g.num_vertices();
    let total = g.num_edges();
    let mut parts = Vec::with_capacity(n);
    let mut vstart: usize = 0;
    for i in 0..n {
        if vstart >= nv {
            break;
        }
        let mut vend = if i + 1 == n {
            nv
        } else {
            // first vertex whose cumulative offset reaches the i+1'th
            // ideal boundary; ties resolve to the earlier vertex so a
            // perfectly divisible graph splits exactly evenly
            let target = total * (i as u64 + 1) / n as u64;
            let tail = &g.offsets()[vstart + 1..=nv];
            vstart + 1 + tail.partition_point(|&o| o < target)
        };
        vend = vend.clamp(vstart + 1, nv);
        if i + 1 < n && g.offsets()[vend] == total {
            // every remaining edge is covered: absorb the zero-degree
            // tail instead of emitting empty shards for it
            vend = nv;
        }
        parts.push(Partition {
            vertices: vstart as VertexId..vend as VertexId,
            edges: g.offsets()[vstart]..g.offsets()[vend],
        });
        vstart = vend;
    }
    debug_assert_eq!(validate_partitions(g, &parts), Ok(()));
    parts
}

/// Materialize one shard as a standalone CSR in the *global* vertex id
/// space: same vertex count as `g`, but only the partition's own edge
/// slice — vertices outside `p.vertices` have zero degree. Owner-computes
/// fleet execution runs unmodified vertex programs over these: edge
/// targets stay global, so activations cross shard boundaries naturally,
/// while each device only ever stores and ships its own edge slice.
pub fn shard_csr(g: &Csr, p: &Partition) -> Csr {
    let n = g.num_vertices();
    let (a, b) = (p.vertices.start as usize, p.vertices.end as usize);
    let (ea, eb) = (p.edges.start, p.edges.end);
    debug_assert_eq!(g.offsets()[a], ea, "partition disagrees with offsets");
    debug_assert_eq!(g.offsets()[b], eb, "partition disagrees with offsets");
    let offsets: Vec<_> = (0..=n)
        .map(|v| {
            if v <= a {
                0
            } else if v <= b {
                g.offsets()[v] - ea
            } else {
                eb - ea
            }
        })
        .collect();
    let targets = g.targets()[ea as usize..eb as usize].to_vec();
    let weights = g.weights().map(|w| w[ea as usize..eb as usize].to_vec());
    Csr::from_parts(offsets, targets, weights)
}

/// Validate that `parts` exactly tile `g` (used by tests and debug builds).
pub fn validate_partitions(g: &Csr, parts: &[Partition]) -> Result<(), String> {
    let n = g.num_vertices() as VertexId;
    let mut expect_v: VertexId = 0;
    let mut expect_e: u64 = 0;
    for (i, p) in parts.iter().enumerate() {
        if p.vertices.start != expect_v {
            return Err(format!("partition {i}: vertex gap at {expect_v}"));
        }
        if p.edges.start != expect_e {
            return Err(format!("partition {i}: edge gap at {expect_e}"));
        }
        if p.vertices.is_empty() {
            return Err(format!("partition {i}: empty vertex range"));
        }
        if g.offsets()[p.vertices.start as usize] != p.edges.start
            || g.offsets()[p.vertices.end as usize] != p.edges.end
        {
            return Err(format!("partition {i}: edge range disagrees with offsets"));
        }
        expect_v = p.vertices.end;
        expect_e = p.edges.end;
    }
    if expect_v != n {
        return Err(format!(
            "partitions end at vertex {expect_v}, graph has {n}"
        ));
    }
    if expect_e != g.num_edges() {
        return Err("partitions do not cover all edges".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{rmat_graph, RmatConfig};

    fn star(n: usize) -> Csr {
        // vertex 0 points at everyone else
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(0, v as VertexId);
        }
        b.build()
    }

    #[test]
    fn partitions_tile_the_graph() {
        let g = rmat_graph(&RmatConfig::new(10, 20_000, 5));
        for budget in [256u64, 1024, 4096, 1 << 20] {
            let parts = partition_by_bytes(&g, budget);
            validate_partitions(&g, &parts).unwrap();
            // every non-oversized partition respects the budget
            for p in &parts {
                if p.vertices.len() > 1 {
                    assert!(p.num_edges() * 4 <= budget, "budget {budget} violated");
                }
            }
        }
    }

    #[test]
    fn oversized_vertex_gets_own_partition() {
        let g = star(10_000); // vertex 0 has 9_999 edges = ~40 KB
        let parts = partition_by_bytes(&g, 1024);
        validate_partitions(&g, &parts).unwrap();
        assert_eq!(parts[0].vertices, 0..1);
        assert_eq!(parts[0].num_edges(), 9_999);
    }

    #[test]
    fn single_partition_when_budget_is_large() {
        let g = star(100);
        let parts = partition_by_bytes(&g, 1 << 30);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].vertices, 0..100);
    }

    #[test]
    fn empty_graph_yields_no_partitions_only_for_zero_vertices() {
        let g = Csr::empty(0);
        assert!(partition_by_bytes(&g, 1024).is_empty());
        // vertices but no edges: still tiled (zero-edge partitions)
        let g2 = Csr::empty(10);
        let parts = partition_by_bytes(&g2, 1024);
        validate_partitions(&g2, &parts).unwrap();
    }

    #[test]
    fn exact_fit_boundary() {
        // 4 vertices with degree 2 each (8 edges, 32 bytes); budget = 16 bytes
        // must yield exactly 2 partitions of 2 vertices.
        let mut b = GraphBuilder::new(4);
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4);
            b.add_edge(v, (v + 2) % 4);
        }
        let g = b.build();
        let parts = partition_by_bytes(&g, 16);
        validate_partitions(&g, &parts).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].vertices, 0..2);
        assert_eq!(parts[1].vertices, 2..4);
    }

    #[test]
    #[should_panic(expected = "below one edge")]
    fn rejects_tiny_budget() {
        partition_by_bytes(&star(4), 2);
    }

    /// A graph with an oversized hub in the middle and a zero-degree tail:
    /// the shapes the partitioners must not mis-tile.
    fn hub_with_dead_tail() -> Csr {
        let mut b = GraphBuilder::new(1_000);
        for v in 0..200u32 {
            b.add_edge(v, v + 1);
        }
        for t in 0..500u32 {
            b.add_edge(300, t); // the hub
        }
        b.build() // vertices 301..1000 have zero degree
    }

    #[test]
    fn byte_partitions_pin_invariants_on_hard_shapes() {
        for g in [
            Csr::empty(0),
            Csr::empty(7),
            star(5_000),
            hub_with_dead_tail(),
        ] {
            for budget in [4u64, 64, 1024, 1 << 30] {
                let parts = partition_by_bytes(&g, budget);
                // full coverage + no overlap, machine-checked
                validate_partitions(&g, &parts).unwrap();
                assert_eq!(parts.is_empty(), g.num_vertices() == 0);
                for p in &parts {
                    // byte bound holds unless the partition is one
                    // oversized vertex
                    let bytes = p.num_edges() * g.bytes_per_edge() as u64;
                    assert!(
                        bytes <= budget || p.vertices.len() == 1,
                        "budget {budget} violated by a multi-vertex partition"
                    );
                }
            }
        }
    }

    #[test]
    fn even_edge_partitions_balance_and_tile() {
        let g = rmat_graph(&RmatConfig::new(10, 20_000, 5));
        for n in [1usize, 2, 3, 4, 8] {
            let parts = partition_even_edges(&g, n);
            validate_partitions(&g, &parts).unwrap();
            assert_eq!(parts.len(), n);
            let ideal = g.num_edges() / n as u64;
            let max_degree = (0..g.num_vertices() as VertexId)
                .map(|v| g.degree(v))
                .max()
                .unwrap();
            for p in &parts {
                assert!(
                    p.num_edges() <= ideal + max_degree,
                    "shard {:?} holds {} edges, ideal {ideal}",
                    p.vertices,
                    p.num_edges()
                );
            }
        }
        // deterministic
        assert_eq!(partition_even_edges(&g, 4), partition_even_edges(&g, 4));
    }

    #[test]
    fn even_edge_partitions_handle_degenerate_shapes() {
        // hub: all edges on vertex 0 -> one shard absorbs everything
        let g = star(100);
        let parts = partition_even_edges(&g, 4);
        validate_partitions(&g, &parts).unwrap();
        assert_eq!(parts.len(), 1);
        // zero-degree tail folds into the shard owning the last edges
        let g = hub_with_dead_tail();
        let parts = partition_even_edges(&g, 3);
        validate_partitions(&g, &parts).unwrap();
        assert_eq!(parts.last().unwrap().vertices.end, 1_000);
        // fewer vertices than shards: no empty shards
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        let parts = partition_even_edges(&g, 8);
        validate_partitions(&g, &parts).unwrap();
        assert!(parts.len() <= 2);
        // empty graphs
        assert!(partition_even_edges(&Csr::empty(0), 4).is_empty());
        let parts = partition_even_edges(&Csr::empty(9), 4);
        validate_partitions(&Csr::empty(9), &parts).unwrap();
        assert_eq!(parts.len(), 1, "edgeless graph is one whole-range shard");
    }

    #[test]
    fn shard_csr_preserves_owned_adjacency_in_global_ids() {
        let g = rmat_graph(&RmatConfig::new(9, 8_000, 7));
        let parts = partition_even_edges(&g, 3);
        let mut edges_seen = 0u64;
        for p in &parts {
            let s = shard_csr(&g, p);
            assert_eq!(s.num_vertices(), g.num_vertices(), "global id space");
            assert_eq!(s.num_edges(), p.num_edges());
            edges_seen += s.num_edges();
            for v in 0..g.num_vertices() as VertexId {
                if p.vertices.contains(&v) {
                    assert_eq!(s.neighbors(v), g.neighbors(v), "owned vertex {v}");
                } else {
                    assert_eq!(s.degree(v), 0, "foreign vertex {v} must be empty");
                }
            }
        }
        assert_eq!(edges_seen, g.num_edges(), "shards cover every edge once");
    }

    #[test]
    fn shard_csr_carries_weights() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(1, 2, 20);
        b.add_weighted_edge(2, 3, 30);
        let g = b.build();
        let parts = partition_even_edges(&g, 2);
        for p in &parts {
            let s = shard_csr(&g, p);
            assert!(s.is_weighted());
            for v in p.vertices.clone() {
                assert_eq!(s.edge_weights(v), g.edge_weights(v));
            }
        }
    }
}
