//! Contiguous vertex-range edge partitions.
//!
//! The PT baseline (GraphReduce-style; paper Figure 1) splits the graph into
//! partitions that each fit in GPU memory, then streams active partitions
//! through the device every iteration. Partitions are contiguous vertex
//! ranges so each one's edge data is one contiguous CSR slice — a single
//! bulk PCIe transfer.

use crate::csr::Csr;
use crate::types::VertexId;

/// A contiguous vertex-range partition of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Vertices whose adjacency lists live in this partition.
    pub vertices: std::ops::Range<VertexId>,
    /// Edge-index range (into the CSR edge array).
    pub edges: std::ops::Range<u64>,
}

impl Partition {
    /// Number of edges in the partition.
    pub fn num_edges(&self) -> u64 {
        self.edges.end - self.edges.start
    }
}

/// Split `g` into contiguous partitions whose edge payload each fits in
/// `max_bytes`. A single vertex whose adjacency list alone exceeds the
/// budget gets its own (oversized) partition — the PT runner then streams
/// it in slices.
///
/// # Panics
/// Panics if `max_bytes` is smaller than one edge entry.
pub fn partition_by_bytes(g: &Csr, max_bytes: u64) -> Vec<Partition> {
    let bpe = g.bytes_per_edge() as u64;
    assert!(max_bytes >= bpe, "partition budget below one edge");
    let max_edges = max_bytes / bpe;
    let n = g.num_vertices();
    let mut parts = Vec::new();
    let mut vstart: usize = 0;
    while vstart < n {
        let estart = g.offsets()[vstart];
        // furthest vend with offsets[vend] - estart <= max_edges
        let limit = estart + max_edges;
        // furthest end vertex whose cumulative edge offset stays within the
        // budget: count the offsets in (vstart, n] that are <= limit
        let tail = &g.offsets()[vstart + 1..=n];
        let mut vend = vstart + tail.partition_point(|&o| o <= limit);
        if vend == vstart {
            vend = vstart + 1; // oversized single-vertex partition
        }
        vend = vend.min(n);
        parts.push(Partition {
            vertices: vstart as VertexId..vend as VertexId,
            edges: g.offsets()[vstart]..g.offsets()[vend],
        });
        vstart = vend;
    }
    parts
}

/// Validate that `parts` exactly tile `g` (used by tests and debug builds).
pub fn validate_partitions(g: &Csr, parts: &[Partition]) -> Result<(), String> {
    let n = g.num_vertices() as VertexId;
    let mut expect_v: VertexId = 0;
    let mut expect_e: u64 = 0;
    for (i, p) in parts.iter().enumerate() {
        if p.vertices.start != expect_v {
            return Err(format!("partition {i}: vertex gap at {expect_v}"));
        }
        if p.edges.start != expect_e {
            return Err(format!("partition {i}: edge gap at {expect_e}"));
        }
        if p.vertices.is_empty() {
            return Err(format!("partition {i}: empty vertex range"));
        }
        if g.offsets()[p.vertices.start as usize] != p.edges.start
            || g.offsets()[p.vertices.end as usize] != p.edges.end
        {
            return Err(format!("partition {i}: edge range disagrees with offsets"));
        }
        expect_v = p.vertices.end;
        expect_e = p.edges.end;
    }
    if expect_v != n {
        return Err(format!(
            "partitions end at vertex {expect_v}, graph has {n}"
        ));
    }
    if expect_e != g.num_edges() {
        return Err("partitions do not cover all edges".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{rmat_graph, RmatConfig};

    fn star(n: usize) -> Csr {
        // vertex 0 points at everyone else
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(0, v as VertexId);
        }
        b.build()
    }

    #[test]
    fn partitions_tile_the_graph() {
        let g = rmat_graph(&RmatConfig::new(10, 20_000, 5));
        for budget in [256u64, 1024, 4096, 1 << 20] {
            let parts = partition_by_bytes(&g, budget);
            validate_partitions(&g, &parts).unwrap();
            // every non-oversized partition respects the budget
            for p in &parts {
                if p.vertices.len() > 1 {
                    assert!(p.num_edges() * 4 <= budget, "budget {budget} violated");
                }
            }
        }
    }

    #[test]
    fn oversized_vertex_gets_own_partition() {
        let g = star(10_000); // vertex 0 has 9_999 edges = ~40 KB
        let parts = partition_by_bytes(&g, 1024);
        validate_partitions(&g, &parts).unwrap();
        assert_eq!(parts[0].vertices, 0..1);
        assert_eq!(parts[0].num_edges(), 9_999);
    }

    #[test]
    fn single_partition_when_budget_is_large() {
        let g = star(100);
        let parts = partition_by_bytes(&g, 1 << 30);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].vertices, 0..100);
    }

    #[test]
    fn empty_graph_yields_no_partitions_only_for_zero_vertices() {
        let g = Csr::empty(0);
        assert!(partition_by_bytes(&g, 1024).is_empty());
        // vertices but no edges: still tiled (zero-edge partitions)
        let g2 = Csr::empty(10);
        let parts = partition_by_bytes(&g2, 1024);
        validate_partitions(&g2, &parts).unwrap();
    }

    #[test]
    fn exact_fit_boundary() {
        // 4 vertices with degree 2 each (8 edges, 32 bytes); budget = 16 bytes
        // must yield exactly 2 partitions of 2 vertices.
        let mut b = GraphBuilder::new(4);
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4);
            b.add_edge(v, (v + 2) % 4);
        }
        let g = b.build();
        let parts = partition_by_bytes(&g, 16);
        validate_partitions(&g, &parts).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].vertices, 0..2);
        assert_eq!(parts[1].vertices, 2..4);
    }

    #[test]
    #[should_panic(expected = "below one edge")]
    fn rejects_tiny_budget() {
        partition_by_bytes(&star(4), 2);
    }
}
