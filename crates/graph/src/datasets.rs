//! Scaled dataset catalog mirroring the paper's Table 3.
//!
//! The paper evaluates on four real graphs plus R-MAT synthetics:
//!
//! | Abbr | Name                 | Vertices | Edges  | Class |
//! |------|----------------------|----------|--------|-------|
//! | GS   | gsh-2015-host (d)    | 68.66 M  | 1.80 B | web   |
//! | FK   | friendster-konect (u)| 68.35 M  | 2.59 B | social|
//! | FS   | friendster-snap (u)  | 124.83 M | 3.61 B | social|
//! | UK   | uk-2007-04 (d)       | 106.86 M | 3.79 B | web   |
//! | RMAT | RMAT-rand (u)        | 40–100 M | 2.5–12 B | synthetic |
//!
//! Those graphs are 7–28 GB; the experiments here run them scaled down by a
//! configurable divisor (default 1000) with the **simulated GPU memory
//! scaled by the same divisor** (paper: 10 GB cap on a 16 GB P100), so every
//! ratio the paper's results depend on — active fraction K, dataset-size /
//! GPU-memory, partition counts — is preserved. Social datasets come from
//! the Chung–Lu generator, web datasets from the host-locality generator,
//! both seeded per dataset for reproducibility.

use crate::csr::Csr;
use crate::generators::{rmat_graph, social_graph, web_graph, RmatConfig, SocialConfig, WebConfig};
use crate::types::Weight;

/// Paper GPU memory cap: "we limit the GPU memory as 10GB".
pub const PAPER_GPU_MEM_BYTES: u64 = 10 * (1 << 30);

/// Default scale divisor applied to the paper's graph sizes.
pub const DEFAULT_SCALE: u64 = 1000;

/// Structural class of a dataset (selects the generator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphClass {
    /// Undirected, heavy-tailed, no id locality (Friendster-like).
    Social,
    /// Directed, host-locality, power-law host popularity (web crawl).
    Web,
    /// R-MAT synthetic.
    Rmat,
}

/// Identifier of one of the paper's datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// gsh-2015-host (directed web).
    Gs,
    /// friendster-konect (undirected social).
    Fk,
    /// friendster-snap (undirected social).
    Fs,
    /// uk-2007-04 (directed web).
    Uk,
}

impl DatasetId {
    /// All four real-graph stand-ins, in the paper's Table 3 order.
    pub const ALL: [DatasetId; 4] = [DatasetId::Gs, DatasetId::Fk, DatasetId::Fs, DatasetId::Uk];

    /// Paper abbreviation ("GS", "FK", ...).
    pub fn abbr(self) -> &'static str {
        match self {
            DatasetId::Gs => "GS",
            DatasetId::Fk => "FK",
            DatasetId::Fs => "FS",
            DatasetId::Uk => "UK",
        }
    }

    /// Full dataset name from Table 3.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Gs => "gsh-2015-host(d)",
            DatasetId::Fk => "friendster-konect(u)",
            DatasetId::Fs => "friendster-snap(u)",
            DatasetId::Uk => "uk-2007-04(d)",
        }
    }

    /// Structural class (selects the stand-in generator).
    pub fn class(self) -> GraphClass {
        match self {
            DatasetId::Gs | DatasetId::Uk => GraphClass::Web,
            DatasetId::Fk | DatasetId::Fs => GraphClass::Social,
        }
    }

    /// Whether the original graph is directed.
    pub fn directed(self) -> bool {
        matches!(self.class(), GraphClass::Web)
    }

    /// Paper vertex count.
    pub fn paper_vertices(self) -> u64 {
        match self {
            DatasetId::Gs => 68_660_000,
            DatasetId::Fk => 68_350_000,
            DatasetId::Fs => 124_830_000,
            DatasetId::Uk => 106_860_000,
        }
    }

    /// Paper edge count (CSR entries; matches the Table 5 size column at
    /// 4 B/edge for the unweighted algorithms).
    pub fn paper_edges(self) -> u64 {
        match self {
            DatasetId::Gs => 1_800_000_000,
            DatasetId::Fk => 2_590_000_000,
            DatasetId::Fs => 3_610_000_000,
            DatasetId::Uk => 3_790_000_000,
        }
    }

    /// Deterministic seed for the stand-in generator.
    fn seed(self) -> u64 {
        match self {
            DatasetId::Gs => 0x6A5C_0001,
            DatasetId::Fk => 0x6A5C_0002,
            DatasetId::Fs => 0x6A5C_0003,
            DatasetId::Uk => 0x6A5C_0004,
        }
    }
}

/// A materialized scaled dataset.
pub struct Dataset {
    /// Which paper dataset this stands in for.
    pub id: DatasetId,
    /// The scaled graph (unweighted; call [`Dataset::weighted`] for SSSP).
    pub graph: Csr,
    /// The scale divisor it was built with.
    pub scale: u64,
}

impl Dataset {
    /// Build the scaled stand-in for `id` with divisor `scale`
    /// (use [`DEFAULT_SCALE`] to match the shipped experiments).
    pub fn build(id: DatasetId, scale: u64) -> Dataset {
        assert!(scale >= 1, "scale divisor must be >= 1");
        let n = (id.paper_vertices() / scale).max(2) as usize;
        let m = (id.paper_edges() / scale).max(16);
        let graph = match id.class() {
            GraphClass::Social => {
                // Social graphs are undirected; the CSR holds ~m entries,
                // so sample m/2 undirected edges.
                social_graph(&SocialConfig::new(n, m / 2, id.seed()))
            }
            GraphClass::Web => web_graph(&WebConfig::new(n, m, id.seed())),
            GraphClass::Rmat => unreachable!("use Dataset::rmat"),
        };
        Dataset { id, graph, scale }
    }

    /// Build all four datasets at `scale`.
    pub fn build_all(scale: u64) -> Vec<Dataset> {
        DatasetId::ALL
            .iter()
            .map(|&id| Dataset::build(id, scale))
            .collect()
    }

    /// The scaled GPU-memory cap matching this dataset's scale
    /// (paper: 10 GB).
    pub fn gpu_mem_bytes(&self) -> u64 {
        PAPER_GPU_MEM_BYTES / self.scale
    }

    /// Weighted variant for SSSP: weights uniform in `1..=64` derived from a
    /// hash of the edge index (deterministic, matches the paper's doubled
    /// edge footprint).
    pub fn weighted(&self) -> Csr {
        weighted_variant(&self.graph)
    }
}

/// Attach deterministic pseudo-random weights in `1..=64` to any graph.
pub fn weighted_variant(g: &Csr) -> Csr {
    g.with_weights_from(|_, e| {
        let h = e.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        (h % 64 + 1) as Weight
    })
}

/// Build an R-MAT stand-in with roughly `paper_edges / scale` edges — the
/// Figure 11 scaling series ("RMAT-rand", 2.5–12 B edges at paper scale).
pub fn rmat_dataset(paper_edges: u64, scale: u64, seed: u64) -> Csr {
    let m = (paper_edges / scale).max(16);
    // Paper RMATs have 40-100M vertices for 2.5-12B edges (~1:40 V:E, with
    // vertex arrays a small share of the 10GB device). R-MAT needs a
    // power-of-two vertex count; round *down* so the scaled vertex arrays
    // keep the paper's proportion of device memory.
    let target_vertices = (m / 40).max(16);
    let sc = 63 - target_vertices.leading_zeros();
    rmat_graph(&RmatConfig::new(sc, m / 2, seed).undirected(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    const TEST_SCALE: u64 = 20_000; // tiny for fast tests

    #[test]
    fn catalog_matches_paper_table3_order() {
        let names: Vec<&str> = DatasetId::ALL.iter().map(|d| d.abbr()).collect();
        assert_eq!(names, vec!["GS", "FK", "FS", "UK"]);
        assert!(DatasetId::Gs.directed());
        assert!(!DatasetId::Fk.directed());
        assert!(!DatasetId::Fs.directed());
        assert!(DatasetId::Uk.directed());
    }

    #[test]
    fn scaled_sizes_track_paper_ratios() {
        let d = Dataset::build(DatasetId::Fk, TEST_SCALE);
        let expect_v = DatasetId::Fk.paper_vertices() / TEST_SCALE;
        assert_eq!(d.graph.num_vertices() as u64, expect_v);
        // symmetrized social: entries within 25% of the paper-scaled count
        let expect_e = DatasetId::Fk.paper_edges() / TEST_SCALE;
        let got = d.graph.num_edges();
        assert!(
            (got as f64) > expect_e as f64 * 0.75 && (got as f64) < expect_e as f64 * 1.25,
            "edges {got} vs expected ~{expect_e}"
        );
    }

    #[test]
    fn gpu_memory_scales_with_dataset() {
        let d = Dataset::build(DatasetId::Gs, TEST_SCALE);
        assert_eq!(d.gpu_mem_bytes(), PAPER_GPU_MEM_BYTES / TEST_SCALE);
        // Dataset must oversubscribe the device like the paper's do (PR sizes
        // are 0.7-1.5x of 10GB; SSSP 1.4-2.9x).
        let sssp_bytes = d.weighted().edge_bytes();
        assert!(
            sssp_bytes > d.gpu_mem_bytes(),
            "SSSP dataset must exceed GPU memory"
        );
    }

    #[test]
    fn social_datasets_are_symmetric_and_skewed() {
        let d = Dataset::build(DatasetId::Fs, TEST_SCALE);
        let s = degree_stats(&d.graph);
        assert!(s.gini > 0.3, "social gini {:.2}", s.gini);
        for (u, v) in d.graph.iter_edges().take(5_000) {
            assert!(d.graph.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn weighted_variant_doubles_bytes() {
        let d = Dataset::build(DatasetId::Gs, TEST_SCALE);
        let w = d.weighted();
        assert_eq!(w.edge_bytes(), 2 * d.graph.edge_bytes());
        assert!(w.weights().unwrap().iter().all(|&x| (1..=64).contains(&x)));
    }

    #[test]
    fn deterministic_builds() {
        let a = Dataset::build(DatasetId::Uk, TEST_SCALE);
        let b = Dataset::build(DatasetId::Uk, TEST_SCALE);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn rmat_dataset_scales() {
        let g = rmat_dataset(2_500_000_000, 100_000, 1);
        assert!(g.num_edges() > 10_000, "edges {}", g.num_edges());
        g.validate().unwrap();
    }
}
