//! Edge-list → CSR construction.
//!
//! The builder accepts an arbitrary `(src, dst[, weight])` stream and
//! produces a valid [`Csr`]: counting-sort by source (O(V+E), no comparison
//! sort), optional per-source neighbor sorting, optional de-duplication,
//! optional self-loop removal, and symmetrization for undirected inputs —
//! the same preprocessing pipeline graph frameworks run before handing data
//! to an out-of-core engine.

use crate::csr::Csr;
use crate::types::{VertexId, Weight};

/// Staged edges plus construction options.
///
/// ```
/// use ascetic_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3).symmetrize(true).sort_neighbors(true);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 4); // each undirected edge stored twice
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
pub struct GraphBuilder {
    num_vertices: usize,
    srcs: Vec<VertexId>,
    dsts: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
    symmetrize: bool,
    dedup: bool,
    drop_self_loops: bool,
    sort_neighbors: bool,
}

impl GraphBuilder {
    /// A builder for a graph over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            srcs: Vec::new(),
            dsts: Vec::new(),
            weights: None,
            symmetrize: false,
            dedup: false,
            drop_self_loops: false,
            sort_neighbors: false,
        }
    }

    /// Pre-size internal buffers for `n` edges.
    pub fn with_capacity(num_vertices: usize, n: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.srcs.reserve(n);
        b.dsts.reserve(n);
        b
    }

    /// Also insert `(dst, src)` for every edge (undirected input).
    pub fn symmetrize(mut self, on: bool) -> Self {
        self.symmetrize = on;
        self
    }

    /// Remove duplicate `(src, dst)` pairs (keeping the first weight).
    /// Implies neighbor sorting.
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Drop `v → v` edges.
    pub fn drop_self_loops(mut self, on: bool) -> Self {
        self.drop_self_loops = on;
        self
    }

    /// Sort each adjacency list by target id.
    pub fn sort_neighbors(mut self, on: bool) -> Self {
        self.sort_neighbors = on;
        self
    }

    /// Stage an unweighted edge. Panics if a weighted edge was staged before.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            self.weights.is_none(),
            "mixing weighted and unweighted edges"
        );
        debug_assert!((src as usize) < self.num_vertices && (dst as usize) < self.num_vertices);
        self.srcs.push(src);
        self.dsts.push(dst);
    }

    /// Stage a weighted edge. All edges must be weighted once any is.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: Weight) {
        debug_assert!((src as usize) < self.num_vertices && (dst as usize) < self.num_vertices);
        if self.weights.is_none() {
            assert!(self.srcs.is_empty(), "mixing weighted and unweighted edges");
            self.weights = Some(Vec::new());
        }
        self.srcs.push(src);
        self.dsts.push(dst);
        self.weights.as_mut().unwrap().push(w);
    }

    /// Number of staged edges (before symmetrization/dedup).
    pub fn staged_edges(&self) -> usize {
        self.srcs.len()
    }

    /// Build the CSR.
    pub fn build(mut self) -> Csr {
        let n = self.num_vertices;
        if self.symmetrize {
            let m = self.srcs.len();
            self.srcs.reserve(m);
            self.dsts.reserve(m);
            for i in 0..m {
                let (s, d) = (self.srcs[i], self.dsts[i]);
                if s != d {
                    self.srcs.push(d);
                    self.dsts.push(s);
                    if let Some(w) = self.weights.as_mut() {
                        let wi = w[i];
                        w.push(wi);
                    }
                }
            }
        }
        if self.drop_self_loops {
            let keep: Vec<bool> = self
                .srcs
                .iter()
                .zip(&self.dsts)
                .map(|(s, d)| s != d)
                .collect();
            retain_by_mask(&mut self.srcs, &keep);
            retain_by_mask(&mut self.dsts, &keep);
            if let Some(w) = self.weights.as_mut() {
                retain_by_mask(w, &keep);
            }
        }

        // Counting sort by source: degree histogram → offsets → scatter.
        let m = self.srcs.len();
        let mut deg = vec![0u64; n + 1];
        for &s in &self.srcs {
            deg[s as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg.clone(); // final offsets (prefix sums)
        let mut cursor = deg;
        let mut targets = vec![0 as VertexId; m];
        let mut weights = self.weights.as_ref().map(|_| vec![0 as Weight; m]);
        for i in 0..m {
            let s = self.srcs[i] as usize;
            let pos = cursor[s] as usize;
            cursor[s] += 1;
            targets[pos] = self.dsts[i];
            if let (Some(out), Some(src_w)) = (weights.as_mut(), self.weights.as_ref()) {
                out[pos] = src_w[i];
            }
        }

        let mut csr = Csr::from_parts(offsets, targets, weights);
        if self.sort_neighbors || self.dedup {
            csr = sort_and_maybe_dedup(csr, self.dedup);
        }
        csr
    }
}

fn retain_by_mask<T: Copy>(v: &mut Vec<T>, keep: &[bool]) {
    let mut w = 0usize;
    for i in 0..v.len() {
        if keep[i] {
            v[w] = v[i];
            w += 1;
        }
    }
    v.truncate(w);
}

/// Sort each adjacency list (by target, stable on weights) and optionally
/// remove duplicate targets, rebuilding the offset array.
fn sort_and_maybe_dedup(csr: Csr, dedup: bool) -> Csr {
    let n = csr.num_vertices();
    let mut new_offsets = Vec::with_capacity(n + 1);
    new_offsets.push(0u64);
    let mut new_targets = Vec::with_capacity(csr.num_edges() as usize);
    let mut new_weights = csr
        .weights()
        .map(|_| Vec::with_capacity(csr.num_edges() as usize));

    let mut scratch: Vec<(VertexId, Weight)> = Vec::new();
    for v in 0..n as VertexId {
        scratch.clear();
        match csr.weights() {
            None => scratch.extend(csr.neighbors(v).iter().map(|&t| (t, 0))),
            Some(_) => scratch.extend(
                csr.neighbors(v)
                    .iter()
                    .zip(csr.edge_weights(v))
                    .map(|(&t, &w)| (t, w)),
            ),
        }
        scratch.sort_unstable_by_key(|&(t, _)| t);
        if dedup {
            scratch.dedup_by_key(|&mut (t, _)| t);
        }
        for &(t, w) in &scratch {
            new_targets.push(t);
            if let Some(nw) = new_weights.as_mut() {
                nw.push(w);
            }
        }
        new_offsets.push(new_targets.len() as u64);
    }
    Csr::from_parts(new_offsets, new_targets, new_weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csr() {
        let mut b = GraphBuilder::new(4).sort_neighbors(true);
        b.add_edge(2, 0);
        b.add_edge(0, 3);
        b.add_edge(0, 1);
        b.add_edge(3, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[2]);
        g.validate().unwrap();
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let mut b = GraphBuilder::new(3).symmetrize(true).sort_neighbors(true);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn symmetrize_does_not_duplicate_self_loops() {
        let mut b = GraphBuilder::new(2).symmetrize(true);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        // self loop once, 0->1 and mirrored 1->0
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut b = GraphBuilder::new(3).dedup(true);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn drop_self_loops_works() {
        let mut b = GraphBuilder::new(3).drop_self_loops(true);
        b.add_edge(0, 0);
        b.add_edge(1, 1);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[2]);
    }

    #[test]
    fn weighted_edges_follow_their_targets() {
        let mut b = GraphBuilder::new(3).sort_neighbors(true);
        b.add_weighted_edge(0, 2, 20);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(2, 0, 5);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weights(0), &[10, 20]);
        assert_eq!(g.edge_weights(2), &[5]);
    }

    #[test]
    fn weighted_symmetrize_copies_weight() {
        let mut b = GraphBuilder::new(2).symmetrize(true);
        b.add_weighted_edge(0, 1, 7);
        let g = b.build();
        assert_eq!(g.edge_weights(0), &[7]);
        assert_eq!(g.edge_weights(1), &[7]);
    }

    #[test]
    #[should_panic(expected = "mixing")]
    fn rejects_mixed_weightedness() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_weighted_edge(1, 0, 3);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(10).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices_have_empty_lists() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4);
        let g = b.build();
        for v in 1..4 {
            assert!(g.neighbors(v).is_empty());
        }
    }
}
