//! Compressed Sparse Row graph storage.
//!
//! One [`Csr`] holds the whole graph in CPU main memory — exactly the role
//! the host-side `Edgelist` plays in the paper (vertices live on the GPU,
//! edges live in CPU DRAM and are shipped over as needed). Targets are `u32`
//! and per-edge weights, when present, sit in a parallel `u32` array, so the
//! serialized edge footprint is 4 B/edge unweighted and 8 B/edge weighted —
//! the byte accounting Tables 2/5 rely on.

use crate::types::{
    EdgeCount, VertexId, Weight, BYTES_PER_EDGE_UNWEIGHTED, BYTES_PER_EDGE_WEIGHTED,
};

/// A directed graph in CSR form. Undirected inputs are stored symmetrized
/// (each undirected edge appears in both adjacency lists).
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` (and `weights`) for the
    /// out-edges of `v`. Length `num_vertices + 1`; `offsets[0] == 0`.
    offsets: Vec<EdgeCount>,
    /// Edge targets, grouped by source vertex.
    targets: Vec<VertexId>,
    /// Optional per-edge weights, parallel to `targets`.
    weights: Option<Vec<Weight>>,
}

impl std::fmt::Debug for Csr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Csr(|V|={}, |E|={}, weighted={})",
            self.num_vertices(),
            self.num_edges(),
            self.is_weighted()
        )
    }
}

impl Csr {
    /// Build from raw parts, validating the CSR invariants.
    ///
    /// # Panics
    /// Panics if offsets are not monotone starting at 0, if the final offset
    /// disagrees with `targets.len()`, if any target is out of range, or if
    /// a weights array of the wrong length is supplied.
    pub fn from_parts(
        offsets: Vec<EdgeCount>,
        targets: Vec<VertexId>,
        weights: Option<Vec<Weight>>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets[0] must be 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            *offsets.last().unwrap() as usize,
            targets.len(),
            "last offset must equal edge count"
        );
        let n = (offsets.len() - 1) as u64;
        assert!(
            targets.iter().all(|&t| (t as u64) < n),
            "edge target out of vertex range"
        );
        if let Some(w) = &weights {
            assert_eq!(
                w.len(),
                targets.len(),
                "weights length must equal edge count"
            );
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Fallible variant of [`Csr::from_parts`] for untrusted input
    /// (e.g. deserialization): returns a description of the violated
    /// invariant instead of panicking.
    pub fn try_from_parts(
        offsets: Vec<EdgeCount>,
        targets: Vec<VertexId>,
        weights: Option<Vec<Weight>>,
    ) -> Result<Self, String> {
        let candidate = Csr {
            offsets,
            targets,
            weights,
        };
        candidate.validate()?;
        Ok(candidate)
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: None,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edge entries (undirected edges count twice).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Whether a parallel weight array is present.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Range of edge indices belonging to `v`.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<u64> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Neighbors of `v` as a slice of targets.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let r = self.edge_range(v);
        &self.targets[r.start as usize..r.end as usize]
    }

    /// Weights of `v`'s out-edges; panics if the graph is unweighted.
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> &[Weight] {
        let r = self.edge_range(v);
        &self.weights.as_ref().expect("graph is unweighted")[r.start as usize..r.end as usize]
    }

    /// Full offsets array (length `|V| + 1`).
    #[inline]
    pub fn offsets(&self) -> &[EdgeCount] {
        &self.offsets
    }

    /// Full targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Full weights array, if present.
    #[inline]
    pub fn weights(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Bytes per serialized edge entry for this graph (4 or 8).
    #[inline]
    pub fn bytes_per_edge(&self) -> usize {
        if self.is_weighted() {
            BYTES_PER_EDGE_WEIGHTED
        } else {
            BYTES_PER_EDGE_UNWEIGHTED
        }
    }

    /// Total serialized edge bytes — the paper's dataset "Size" notion
    /// (Table 5 sizes are `|E| × bytes_per_edge`).
    #[inline]
    pub fn edge_bytes(&self) -> u64 {
        self.num_edges() * self.bytes_per_edge() as u64
    }

    /// Serialize the edge entries of edge-index range `r` into `out`
    /// (little-endian `target[,weight]` records). Used by the host side to
    /// stage data for transfers; the byte layout is what travels over the
    /// simulated PCIe link.
    pub fn write_edge_bytes(&self, r: std::ops::Range<u64>, out: &mut Vec<u8>) {
        let (s, e) = (r.start as usize, r.end as usize);
        match &self.weights {
            None => {
                out.reserve((e - s) * BYTES_PER_EDGE_UNWEIGHTED);
                for &t in &self.targets[s..e] {
                    out.extend_from_slice(&t.to_le_bytes());
                }
            }
            Some(w) => {
                out.reserve((e - s) * BYTES_PER_EDGE_WEIGHTED);
                for (&t, &wt) in self.targets[s..e].iter().zip(&w[s..e]) {
                    out.extend_from_slice(&t.to_le_bytes());
                    out.extend_from_slice(&wt.to_le_bytes());
                }
            }
        }
    }

    /// Serialize the edge entries of edge-index range `r` as little-endian
    /// `u32` words (`target` or `target, weight` per edge) appended to
    /// `out`. Device memory in `ascetic-sim` is word-addressed, so this is
    /// the staging format for every simulated PCIe transfer; one edge is 1
    /// word unweighted, 2 words weighted — the 4/8-byte footprint of the
    /// paper.
    pub fn write_edge_words(&self, r: std::ops::Range<u64>, out: &mut Vec<u32>) {
        let (s, e) = (r.start as usize, r.end as usize);
        match &self.weights {
            None => out.extend_from_slice(&self.targets[s..e]),
            Some(w) => {
                out.reserve((e - s) * 2);
                for (&t, &wt) in self.targets[s..e].iter().zip(&w[s..e]) {
                    out.push(t);
                    out.push(wt);
                }
            }
        }
    }

    /// Words per edge entry in the [`Csr::write_edge_words`] format (1 or 2).
    #[inline]
    pub fn words_per_edge(&self) -> usize {
        self.bytes_per_edge() / 4
    }

    /// Strip weights (e.g. to reuse one weighted dataset for BFS/CC/PR,
    /// whose Table 5 sizes assume 4 B/edge).
    pub fn without_weights(&self) -> Csr {
        Csr {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: None,
        }
    }

    /// Attach weights generated by `f(src, edge_idx) -> Weight`.
    pub fn with_weights_from(&self, mut f: impl FnMut(VertexId, u64) -> Weight) -> Csr {
        let mut w = Vec::with_capacity(self.targets.len());
        for v in 0..self.num_vertices() as VertexId {
            for e in self.edge_range(v) {
                w.push(f(v, e));
            }
        }
        Csr {
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: Some(w),
        }
    }

    /// The transpose (CSC mirror): a CSR whose row `v` lists the *in*-edges
    /// of `v` — every source `u` with an edge `u → v` — with parallel
    /// weights carried over. Edges are placed in CSR iteration order
    /// (counting sort), so each transposed row's sources come out ascending
    /// and the delta–varint codec applies to the mirror unchanged.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut offsets = vec![0 as EdgeCount; n + 1];
        for &t in &self.targets {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let m = self.targets.len();
        let mut targets = vec![0 as VertexId; m];
        let mut weights = self.weights.as_ref().map(|_| vec![0 as Weight; m]);
        let src_weights = self.weights.as_deref();
        for u in 0..n as VertexId {
            for e in self.edge_range(u) {
                let t = self.targets[e as usize] as usize;
                let slot = cursor[t] as usize;
                cursor[t] += 1;
                targets[slot] = u;
                if let (Some(w), Some(sw)) = (&mut weights, src_weights) {
                    w[slot] = sw[e as usize];
                }
            }
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Iterate `(src, dst)` over all directed edge entries.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Check structural sanity; returns a description of the first violation.
    /// `from_parts` enforces these at construction; this re-checks after any
    /// manual surgery (used by property tests).
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("empty offsets".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] != 0".into());
        }
        if !self.offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets not monotone".into());
        }
        if *self.offsets.last().unwrap() as usize != self.targets.len() {
            return Err("last offset mismatch".into());
        }
        let n = self.num_vertices() as u64;
        if let Some(bad) = self.targets.iter().find(|&&t| t as u64 >= n) {
            return Err(format!("target {bad} out of range"));
        }
        if let Some(w) = &self.weights {
            if w.len() != self.targets.len() {
                return Err("weights length mismatch".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0→1, 0→2, 1→2, 2→0 ; a small directed test graph.
    fn tiny() -> Csr {
        Csr::from_parts(vec![0, 2, 3, 4], vec![1, 2, 2, 0], None)
    }

    #[test]
    fn basic_accessors() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.edge_range(1), 2..3);
        assert!(!g.is_weighted());
        assert_eq!(g.bytes_per_edge(), 4);
        assert_eq!(g.edge_bytes(), 16);
        g.validate().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(0).is_empty());
        g.validate().unwrap();
    }

    #[test]
    fn weights_roundtrip() {
        let g = tiny().with_weights_from(|_, e| (e as Weight) + 10);
        assert!(g.is_weighted());
        assert_eq!(g.bytes_per_edge(), 8);
        assert_eq!(g.edge_weights(0), &[10, 11]);
        assert_eq!(g.edge_weights(2), &[13]);
        let g2 = g.without_weights();
        assert!(!g2.is_weighted());
        assert_eq!(g2.neighbors(0), g.neighbors(0));
    }

    #[test]
    fn edge_bytes_serialization_unweighted() {
        let g = tiny();
        let mut buf = Vec::new();
        g.write_edge_bytes(0..2, &mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(&buf[0..4], &1u32.to_le_bytes());
        assert_eq!(&buf[4..8], &2u32.to_le_bytes());
    }

    #[test]
    fn edge_bytes_serialization_weighted() {
        let g = tiny().with_weights_from(|_, e| e as Weight * 2);
        let mut buf = Vec::new();
        g.write_edge_bytes(2..4, &mut buf);
        assert_eq!(buf.len(), 16);
        assert_eq!(&buf[0..4], &2u32.to_le_bytes()); // target of edge 2
        assert_eq!(&buf[4..8], &4u32.to_le_bytes()); // weight of edge 2
        assert_eq!(&buf[8..12], &0u32.to_le_bytes()); // target of edge 3
        assert_eq!(&buf[12..16], &6u32.to_le_bytes()); // weight of edge 3
    }

    #[test]
    fn edge_words_unweighted() {
        let g = tiny();
        let mut buf = Vec::new();
        g.write_edge_words(1..4, &mut buf);
        assert_eq!(buf, vec![2, 2, 0]);
        assert_eq!(g.words_per_edge(), 1);
    }

    #[test]
    fn edge_words_weighted_interleaves() {
        let g = tiny().with_weights_from(|_, e| e as Weight + 50);
        let mut buf = Vec::new();
        g.write_edge_words(0..2, &mut buf);
        assert_eq!(buf, vec![1, 50, 2, 51]);
        assert_eq!(g.words_per_edge(), 2);
    }

    #[test]
    fn transpose_reverses_every_edge_with_ascending_rows() {
        let g = tiny();
        let t = g.transpose();
        t.validate().unwrap();
        assert_eq!(t.num_vertices(), g.num_vertices());
        assert_eq!(t.num_edges(), g.num_edges());
        // in-edges of tiny(): 0←2, 1←0, 2←{0,1}
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        // every transposed row lists its sources ascending (codec invariant)
        for v in 0..t.num_vertices() as VertexId {
            assert!(t.neighbors(v).windows(2).all(|w| w[0] <= w[1]));
        }
        // transpose is an involution on the edge multiset
        let mut fwd: Vec<_> = g.iter_edges().collect();
        let mut back: Vec<_> = t.transpose().iter_edges().collect();
        fwd.sort_unstable();
        back.sort_unstable();
        assert_eq!(fwd, back);
    }

    #[test]
    fn transpose_carries_weights() {
        let g = tiny().with_weights_from(|_, e| e as Weight + 10);
        let t = g.transpose();
        assert!(t.is_weighted());
        // edge 2→0 is edge index 3 (weight 13)
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.edge_weights(0), &[13]);
        // in-edges of 2: 0→2 (edge 1, weight 11), 1→2 (edge 2, weight 12)
        assert_eq!(t.edge_weights(2), &[11, 12]);
    }

    #[test]
    fn transpose_handles_self_loops_and_isolated_vertices() {
        // 0→0 self-loop, 2 isolated, 3→1
        let g = Csr::from_parts(vec![0, 1, 1, 1, 2], vec![0, 1], None);
        let t = g.transpose();
        t.validate().unwrap();
        assert_eq!(t.neighbors(0), &[0]);
        assert_eq!(t.neighbors(1), &[3]);
        assert!(t.neighbors(2).is_empty());
        assert!(t.neighbors(3).is_empty());
    }

    #[test]
    fn iter_edges_lists_all() {
        let g = tiny();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_nonmonotone_offsets() {
        Csr::from_parts(vec![0, 3, 2, 4], vec![1, 2, 2, 0], None);
    }

    #[test]
    #[should_panic(expected = "out of vertex range")]
    fn rejects_out_of_range_target() {
        Csr::from_parts(vec![0, 1], vec![5], None);
    }

    #[test]
    #[should_panic(expected = "weights length")]
    fn rejects_bad_weights_len() {
        Csr::from_parts(vec![0, 1], vec![0], Some(vec![1, 2]));
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn rejects_offset_target_mismatch() {
        Csr::from_parts(vec![0, 2], vec![0], None);
    }
}
