//! Edge-chunk geometry.
//!
//! Paper §3.4: *"we divide the graph dataset into 16KB chunks, which are
//! also amenable to the PCI-e burst transfer mechanism"*. The static region,
//! the hotness table and the Figure-2 access tracer all operate on this
//! fixed-size chunking of the edge array. A chunk covers a contiguous range
//! of edge *indices*; how many edges fit depends on whether the graph is
//! weighted (16 KiB / 4 B = 4096 edges, or 2048 weighted).

use crate::csr::Csr;
use crate::types::VertexId;

/// Default chunk size from the paper.
pub const DEFAULT_CHUNK_BYTES: usize = 16 * 1024;

/// Identifier of an edge chunk (index into the chunked edge array).
pub type ChunkId = u32;

/// Geometry of a fixed-size chunking of a graph's edge array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkGeometry {
    /// Bytes per chunk (last chunk may be short).
    pub chunk_bytes: usize,
    /// Serialized bytes per edge entry (4 or 8).
    pub bytes_per_edge: usize,
    /// Edges per full chunk.
    pub edges_per_chunk: u64,
    /// Total edges in the graph.
    pub num_edges: u64,
}

impl ChunkGeometry {
    /// Geometry for `g` using the paper's 16 KiB chunks.
    pub fn for_graph(g: &Csr) -> Self {
        Self::with_chunk_bytes(g, DEFAULT_CHUNK_BYTES)
    }

    /// Geometry for `g` with a custom chunk size (must hold ≥ 1 edge).
    pub fn with_chunk_bytes(g: &Csr, chunk_bytes: usize) -> Self {
        let bpe = g.bytes_per_edge();
        assert!(chunk_bytes >= bpe, "chunk must hold at least one edge");
        ChunkGeometry {
            chunk_bytes,
            bytes_per_edge: bpe,
            edges_per_chunk: (chunk_bytes / bpe) as u64,
            num_edges: g.num_edges(),
        }
    }

    /// Number of chunks covering the edge array.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.num_edges.div_ceil(self.edges_per_chunk) as usize
    }

    /// Chunk containing edge index `e`.
    #[inline]
    pub fn chunk_of_edge(&self, e: u64) -> ChunkId {
        debug_assert!(e < self.num_edges);
        (e / self.edges_per_chunk) as ChunkId
    }

    /// Edge-index range covered by chunk `c` (clamped at the array end).
    #[inline]
    pub fn edge_range(&self, c: ChunkId) -> std::ops::Range<u64> {
        let start = c as u64 * self.edges_per_chunk;
        let end = (start + self.edges_per_chunk).min(self.num_edges);
        start..end
    }

    /// Actual byte length of chunk `c` (last chunk may be short).
    #[inline]
    pub fn chunk_len_bytes(&self, c: ChunkId) -> usize {
        let r = self.edge_range(c);
        (r.end - r.start) as usize * self.bytes_per_edge
    }

    /// Inclusive range of chunks covering vertex `v`'s edges in `g`;
    /// `None` when `v` has no edges.
    pub fn chunks_of_vertex(
        &self,
        g: &Csr,
        v: VertexId,
    ) -> Option<std::ops::RangeInclusive<ChunkId>> {
        let r = g.edge_range(v);
        if r.is_empty() {
            return None;
        }
        Some(self.chunk_of_edge(r.start)..=self.chunk_of_edge(r.end - 1))
    }

    /// Total chunk-covered bytes (== serialized edge bytes).
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.num_edges * self.bytes_per_edge as u64
    }
}

/// A graph's chunked CSC mirror, carried beside the CSR for
/// direction-optimizing traversal: pull-mode iterations ship *in*-edge
/// rows, so the mirror needs its own edge array ([`Csr::transpose`]) and
/// its own [`ChunkGeometry`] over the same chunk size. Built once per
/// session and reused across runs.
#[derive(Clone, Debug)]
pub struct GraphChunks {
    /// The transposed graph: row `v` holds the sources of `v`'s in-edges.
    pub csc: Csr,
    /// Chunk geometry of the original CSR edge array.
    pub csr_geo: ChunkGeometry,
    /// Chunk geometry of the CSC mirror's edge array.
    pub csc_geo: ChunkGeometry,
}

impl GraphChunks {
    /// Transpose `g` and chunk both orientations at `chunk_bytes`.
    pub fn build(g: &Csr, chunk_bytes: usize) -> GraphChunks {
        let csc = g.transpose();
        GraphChunks {
            csr_geo: ChunkGeometry::with_chunk_bytes(g, chunk_bytes),
            csc_geo: ChunkGeometry::with_chunk_bytes(&csc, chunk_bytes),
            csc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn line_graph(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as VertexId, v as VertexId + 1);
        }
        b.build()
    }

    #[test]
    fn paper_chunk_counts() {
        // 16 KiB / 4 B = 4096 edges per chunk.
        let g = line_graph(10_000); // 9999 edges
        let geo = ChunkGeometry::for_graph(&g);
        assert_eq!(geo.edges_per_chunk, 4096);
        assert_eq!(geo.num_chunks(), 3); // 4096+4096+1807
        assert_eq!(geo.edge_range(0), 0..4096);
        assert_eq!(geo.edge_range(2), 8192..9999);
        assert_eq!(geo.chunk_len_bytes(2), 1807 * 4);
        assert_eq!(geo.total_bytes(), 9999 * 4);
    }

    #[test]
    fn weighted_halves_edges_per_chunk() {
        let g = line_graph(100).with_weights_from(|_, _| 1);
        let geo = ChunkGeometry::for_graph(&g);
        assert_eq!(geo.edges_per_chunk, 2048);
        assert_eq!(geo.bytes_per_edge, 8);
    }

    #[test]
    fn chunk_of_edge_roundtrip() {
        let g = line_graph(20_000);
        let geo = ChunkGeometry::for_graph(&g);
        for c in 0..geo.num_chunks() as ChunkId {
            for e in geo.edge_range(c) {
                assert_eq!(geo.chunk_of_edge(e), c);
            }
        }
    }

    #[test]
    fn vertex_chunk_span() {
        let g = line_graph(10_000);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 16); // 4 edges/chunk
                                                           // vertex v has edge index v (single out-edge each)
        assert_eq!(geo.chunks_of_vertex(&g, 0), Some(0..=0));
        assert_eq!(geo.chunks_of_vertex(&g, 5), Some(1..=1));
        // the last vertex has no out-edges
        assert_eq!(geo.chunks_of_vertex(&g, 9999), None);
    }

    #[test]
    fn custom_small_chunks() {
        let g = line_graph(10);
        let geo = ChunkGeometry::with_chunk_bytes(&g, 8); // 2 edges
        assert_eq!(geo.num_chunks(), 5); // 9 edges -> ceil(9/2)
        assert_eq!(geo.edge_range(4), 8..9);
    }

    #[test]
    fn graph_chunks_mirror_shares_chunk_size() {
        let g = line_graph(10_000);
        let gc = GraphChunks::build(&g, 64);
        assert_eq!(gc.csc.num_edges(), g.num_edges());
        assert_eq!(gc.csr_geo.chunk_bytes, 64);
        assert_eq!(gc.csc_geo.chunk_bytes, 64);
        assert_eq!(gc.csr_geo.num_edges, gc.csc_geo.num_edges);
        // the line graph's transpose: vertex v+1 has one in-edge from v
        assert_eq!(gc.csc.neighbors(1), &[0]);
        assert!(gc.csc.neighbors(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn rejects_tiny_chunk() {
        let g = line_graph(10).with_weights_from(|_, _| 1);
        ChunkGeometry::with_chunk_bytes(&g, 4);
    }
}
