//! Fundamental scalar types shared across the workspace.

/// Vertex identifier. The paper's graphs have up to ~125 M vertices, which
/// fits `u32`; using 32 bits halves vertex-array traffic, matching the
/// original CUDA implementation.
pub type VertexId = u32;

/// Edge weight for weighted algorithms (SSSP). The paper notes "the size of
/// the edge data is doubled for SSSP because there is an additional data
/// field for the weight" — i.e. a 4-byte weight next to the 4-byte target.
pub type Weight = u32;

/// Edge count / edge-array index. Edge arrays can exceed `u32::MAX` at paper
/// scale, so offsets are 64-bit.
pub type EdgeCount = u64;

/// "Unreached" distance marker for BFS/SSSP.
pub const INF_DIST: u32 = u32::MAX;

/// Bytes occupied by one CSR edge entry without weights (just the target id).
pub const BYTES_PER_EDGE_UNWEIGHTED: usize = 4;

/// Bytes occupied by one CSR edge entry with a weight (target id + weight).
pub const BYTES_PER_EDGE_WEIGHTED: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_entry_sizes_match_paper() {
        // Table 5: PR on GSH is 7.2 GB over 1.8 B edges => 4 bytes/edge;
        // SSSP on GSH is 13.7 GB => ~8 bytes/edge ("doubled for SSSP").
        assert_eq!(BYTES_PER_EDGE_UNWEIGHTED, 4);
        assert_eq!(BYTES_PER_EDGE_WEIGHTED, 2 * BYTES_PER_EDGE_UNWEIGHTED);
        assert_eq!(std::mem::size_of::<VertexId>(), BYTES_PER_EDGE_UNWEIGHTED);
        assert_eq!(
            std::mem::size_of::<VertexId>() + std::mem::size_of::<Weight>(),
            BYTES_PER_EDGE_WEIGHTED
        );
    }
}
