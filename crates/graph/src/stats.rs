//! Degree statistics and distribution summaries.
//!
//! Used by the dataset catalog to sanity-check that the synthetic stand-ins
//! have the right structural class (heavy-tailed vs regular, directed
//! locality), and by EXPERIMENTS.md to document the generated workloads.

use crate::csr::Csr;
use crate::types::VertexId;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edge entries.
    pub num_edges: u64,
    /// Mean out-degree.
    pub mean: f64,
    /// Maximum out-degree.
    pub max: u64,
    /// Number of vertices with no out-edges.
    pub isolated: usize,
    /// Gini coefficient of the degree distribution (0 = perfectly equal,
    /// → 1 = extremely skewed). Social graphs land around 0.5–0.8; uniform
    /// graphs near 0.1.
    pub gini: f64,
}

/// Compute [`DegreeStats`] for `g`.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_vertices();
    let mut degs: Vec<u64> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let max = degs.iter().copied().max().unwrap_or(0);
    let isolated = degs.iter().filter(|&&d| d == 0).count();
    let m = g.num_edges();
    let mean = if n == 0 { 0.0 } else { m as f64 / n as f64 };
    degs.sort_unstable();
    // Gini via the sorted-sum formula: G = (2*Σ i*x_i)/(n*Σ x_i) - (n+1)/n.
    let total: f64 = m as f64;
    let gini = if n == 0 || total == 0.0 {
        0.0
    } else {
        let weighted: f64 = degs
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
            .sum();
        (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
    };
    DegreeStats {
        num_vertices: n,
        num_edges: m,
        mean,
        max,
        isolated,
        gini,
    }
}

/// Log2-bucketed degree histogram: `hist[k]` counts vertices with
/// out-degree in `[2^k, 2^(k+1))`; `hist[0]` also counts degree-0 vertices
/// separately via [`DegreeStats::isolated`].
pub fn degree_histogram(g: &Csr) -> Vec<u64> {
    let mut hist = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        let d = g.degree(v);
        if d == 0 {
            continue;
        }
        let bucket = 63 - d.leading_zeros() as usize;
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{social_graph, uniform_graph, SocialConfig};

    #[test]
    fn stats_on_tiny_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        b.add_edge(1, 0);
        let g = b.build();
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max, 3);
        assert_eq!(s.isolated, 2);
        assert!((s.mean - 1.0).abs() < 1e-9);
        assert!(s.gini > 0.0 && s.gini < 1.0);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::empty(3);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.isolated, 3);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn social_is_more_skewed_than_uniform() {
        let social = social_graph(&SocialConfig::new(2_000, 10_000, 1));
        let uni = uniform_graph(2_000, 20_000, false, 1);
        let gs = degree_stats(&social).gini;
        let gu = degree_stats(&uni).gini;
        assert!(gs > gu + 0.15, "social gini {gs:.2} vs uniform {gu:.2}");
    }

    #[test]
    fn histogram_buckets() {
        let mut b = GraphBuilder::new(4);
        // degrees: v0=1, v1=2, v2=5
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        for t in [0, 1, 3, 0, 1] {
            b.add_edge(2, t);
        }
        let g = b.build();
        let h = degree_histogram(&g);
        assert_eq!(h[0], 1); // degree 1
        assert_eq!(h[1], 1); // degree 2-3
        assert_eq!(h[2], 1); // degree 4-7
    }
}
