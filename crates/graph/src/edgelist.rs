//! Edge-list IO: text (SNAP/KONECT style) and a compact binary format.
//!
//! The paper's datasets ship as edge lists (SNAP, KONECT, WebGraph exports);
//! this module lets users load their own graphs into the framework and lets
//! the generators persist graphs for reuse across benchmark runs.
//!
//! Text format: one `src dst [weight]` triple per line, whitespace-separated,
//! `#`/`%`-prefixed comment lines ignored (SNAP uses `#`, KONECT uses `%`).
//!
//! Binary format (`.beg`): little-endian
//! `magic:u64 "ASCETIC1" | flags:u64 (bit0 = weighted) | num_vertices:u64 |
//! num_edges:u64 | offsets:[u64; V+1] | targets:[u32; E] | weights:[u32; E]?`

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::{VertexId, Weight};

const MAGIC: u64 = u64::from_le_bytes(*b"ASCETIC1");

/// Errors raised by graph IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem in the input data.
    Parse(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Parse a text edge list from `r`. `num_vertices` of `None` means
/// "max id + 1". Returns the builder so callers can choose symmetrization
/// etc. before building.
pub fn read_text_edges<R: Read>(
    r: R,
    num_vertices: Option<usize>,
) -> Result<GraphBuilder, IoError> {
    let reader = BufReader::new(r);
    let mut edges: Vec<(VertexId, VertexId, Option<Weight>)> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let s: u64 = it
            .next()
            .unwrap()
            .parse()
            .map_err(|_| IoError::Parse(format!("line {}: bad src", lineno + 1)))?;
        let d: u64 = it
            .next()
            .ok_or_else(|| IoError::Parse(format!("line {}: missing dst", lineno + 1)))?
            .parse()
            .map_err(|_| IoError::Parse(format!("line {}: bad dst", lineno + 1)))?;
        let w: Option<Weight> = match it.next() {
            None => None,
            Some(ws) => Some(
                ws.parse()
                    .map_err(|_| IoError::Parse(format!("line {}: bad weight", lineno + 1)))?,
            ),
        };
        max_id = max_id.max(s).max(d);
        if s > u32::MAX as u64 || d > u32::MAX as u64 {
            return Err(IoError::Parse(format!(
                "line {}: vertex id exceeds u32",
                lineno + 1
            )));
        }
        edges.push((s as VertexId, d as VertexId, w));
    }
    let n = match num_vertices {
        Some(n) => n,
        None => {
            if edges.is_empty() {
                0
            } else {
                max_id as usize + 1
            }
        }
    };
    if (max_id as usize) >= n && !edges.is_empty() {
        return Err(IoError::Parse(format!(
            "vertex id {max_id} out of declared range {n}"
        )));
    }
    let weighted = edges.iter().any(|e| e.2.is_some());
    if weighted && edges.iter().any(|e| e.2.is_none()) {
        return Err(IoError::Parse("mixed weighted and unweighted lines".into()));
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (s, d, w) in edges {
        match w {
            Some(w) => b.add_weighted_edge(s, d, w),
            None => b.add_edge(s, d),
        }
    }
    Ok(b)
}

/// Load a text edge list file; see [`read_text_edges`].
pub fn load_text<P: AsRef<Path>>(
    path: P,
    num_vertices: Option<usize>,
) -> Result<GraphBuilder, IoError> {
    read_text_edges(std::fs::File::open(path)?, num_vertices)
}

/// Write `g` as a text edge list (mainly for interchange/debugging).
pub fn write_text<W: Write>(g: &Csr, w: W) -> Result<(), IoError> {
    let mut out = BufWriter::new(w);
    for v in 0..g.num_vertices() as VertexId {
        match g.weights() {
            None => {
                for &t in g.neighbors(v) {
                    writeln!(out, "{v} {t}")?;
                }
            }
            Some(_) => {
                for (&t, &wt) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
                    writeln!(out, "{v} {t} {wt}")?;
                }
            }
        }
    }
    out.flush()?;
    Ok(())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serialize a CSR in the compact binary format.
pub fn write_binary<W: Write>(g: &Csr, w: W) -> Result<(), IoError> {
    let mut out = BufWriter::new(w);
    write_u64(&mut out, MAGIC)?;
    write_u64(&mut out, if g.is_weighted() { 1 } else { 0 })?;
    write_u64(&mut out, g.num_vertices() as u64)?;
    write_u64(&mut out, g.num_edges())?;
    for &o in g.offsets() {
        write_u64(&mut out, o)?;
    }
    for &t in g.targets() {
        out.write_all(&t.to_le_bytes())?;
    }
    if let Some(ws) = g.weights() {
        for &wt in ws {
            out.write_all(&wt.to_le_bytes())?;
        }
    }
    out.flush()?;
    Ok(())
}

/// Deserialize a CSR from the compact binary format.
pub fn read_binary<R: Read>(r: R) -> Result<Csr, IoError> {
    let mut inp = BufReader::new(r);
    if read_u64(&mut inp)? != MAGIC {
        return Err(IoError::Parse("bad magic".into()));
    }
    let flags = read_u64(&mut inp)?;
    let weighted = flags & 1 == 1;
    let n = read_u64(&mut inp)? as usize;
    let m = read_u64(&mut inp)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut inp)?);
    }
    let mut targets = vec![0 as VertexId; m];
    let mut buf = vec![0u8; m * 4];
    inp.read_exact(&mut buf)?;
    for (i, c) in buf.chunks_exact(4).enumerate() {
        targets[i] = u32::from_le_bytes(c.try_into().unwrap());
    }
    let weights = if weighted {
        let mut ws = vec![0 as Weight; m];
        inp.read_exact(&mut buf)?;
        for (i, c) in buf.chunks_exact(4).enumerate() {
            ws[i] = u32::from_le_bytes(c.try_into().unwrap());
        }
        Some(ws)
    } else {
        None
    };
    Csr::try_from_parts(offsets, targets, weights)
        .map_err(|e| IoError::Parse(format!("corrupt CSR structure: {e}")))
}

/// Save a CSR to `path` in the binary format.
pub fn save_binary<P: AsRef<Path>>(g: &Csr, path: P) -> Result<(), IoError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Load a CSR from `path` in the binary format.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Csr, IoError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        let mut b = GraphBuilder::new(4).sort_neighbors(true);
        b.add_edge(0, 1);
        b.add_edge(0, 3);
        b.add_edge(2, 1);
        b.add_edge(3, 0);
        b.build()
    }

    #[test]
    fn text_roundtrip_unweighted() {
        let g = sample();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text_edges(&buf[..], Some(4))
            .unwrap()
            .sort_neighbors(true)
            .build();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_roundtrip_weighted() {
        let g = sample().with_weights_from(|_, e| e as Weight + 1);
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text_edges(&buf[..], Some(4))
            .unwrap()
            .sort_neighbors(true)
            .build();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let text = "# SNAP comment\n% KONECT comment\n\n0 1\n1 2\n";
        let g = read_text_edges(text.as_bytes(), None).unwrap().build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_infers_vertex_count() {
        let g = read_text_edges("0 9\n".as_bytes(), None).unwrap().build();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            read_text_edges("a b\n".as_bytes(), None),
            Err(IoError::Parse(_))
        ));
        assert!(matches!(
            read_text_edges("1\n".as_bytes(), None),
            Err(IoError::Parse(_))
        ));
        assert!(matches!(
            read_text_edges("0 1 x\n".as_bytes(), None),
            Err(IoError::Parse(_))
        ));
    }

    #[test]
    fn text_rejects_mixed_weights() {
        let r = read_text_edges("0 1 5\n1 2\n".as_bytes(), None);
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn text_rejects_out_of_range() {
        let r = read_text_edges("0 7\n".as_bytes(), Some(3));
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn binary_roundtrip_unweighted() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_weighted() {
        let g = sample().with_weights_from(|v, _| v + 100);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = [0u8; 64];
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Parse(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Io(_))));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Csr::empty(0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }
}
