//! Community-structured power-law generator — stand-in for the Friendster
//! social graphs.
//!
//! friendster-konect / friendster-snap are undirected social networks with
//! (a) heavy-tailed degree distributions and (b) pronounced community
//! structure that gives them a non-trivial traversal depth — BFS on the
//! real graph runs for dozens of levels with only a few percent of edges
//! active per level (paper Table 1: 4.5 % BFS, 14.1 % CC on FK). A plain
//! Chung–Lu graph reproduces (a) but not (b): at reproduction scale it
//! collapses to a 2-hop small world and every traversal finishes
//! instantly. So the stand-in samples:
//!
//! * endpoint degrees from a Zipf-like weight table (power-law tail, with
//!   the weight table deterministically permuted so degree is uncorrelated
//!   with vertex id),
//! * and endpoint *pairs* from a ring of equal-size communities: most
//!   edges stay inside a community, the rest hop a geometrically
//!   distributed ring distance — so label/level propagation must walk the
//!   ring, recovering the multi-iteration dynamics the paper's mechanisms
//!   depend on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::alias::AliasTable;
use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;
use ascetic_par::parallel_map_fixed_blocks;

/// Parameters for [`social_graph`].
#[derive(Clone, Copy, Debug)]
pub struct SocialConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges to sample (CSR will hold ~2× entries).
    pub num_edges: u64,
    /// Power-law exponent γ of the degree distribution (2 < γ ≤ 3 typical;
    /// Friendster is ≈ 2.5).
    pub gamma: f64,
    /// Approximate community size (ring of `n / community_size`
    /// communities).
    pub community_size: usize,
    /// Fraction of edges that stay within their community.
    pub intra_frac: f64,
    /// Mean ring distance of inter-community edges (geometric).
    pub hop_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SocialConfig {
    /// Friendster-like defaults (γ = 2.5, ~500-vertex communities, 90 %
    /// intra-community edges).
    pub fn new(num_vertices: usize, num_edges: u64, seed: u64) -> Self {
        SocialConfig {
            num_vertices,
            num_edges,
            gamma: 2.5,
            community_size: 512,
            intra_frac: 0.9,
            hop_mean: 1.3,
            seed,
        }
    }
}

/// Sample a geometric ring hop ≥ 1 with mean ≈ `mean`.
#[inline]
fn geometric_hop(rng: &mut SmallRng, mean: f64) -> usize {
    let p = 1.0 / mean.max(1.0);
    let mut k = 1usize;
    while rng.gen::<f64>() > p && k < 64 {
        k += 1;
    }
    k
}

/// Generate an undirected community-structured power-law graph as a
/// symmetrized CSR (self-loops removed, neighbors sorted).
pub fn social_graph(cfg: &SocialConfig) -> Csr {
    assert!(cfg.num_vertices >= 2, "need at least two vertices");
    assert!(cfg.gamma > 1.0, "gamma must exceed 1");
    assert!(
        (0.0..=1.0).contains(&cfg.intra_frac),
        "intra_frac must be in [0,1]"
    );
    let n = cfg.num_vertices;
    let communities = (n / cfg.community_size.max(1)).clamp(1, n);
    let comm_size = n.div_ceil(communities);

    // Zipf-ish expected-degree weights, permuted so hubs are spread across
    // the id space (and hence across communities).
    let exponent = 1.0 / (cfg.gamma - 1.0);
    let v0 = (n as f64).powf(0.25).max(1.0);
    let mut weights: Vec<f64> = (0..n).map(|v| (v as f64 + v0).powf(-exponent)).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }

    // Per-community alias tables so intra-community endpoints still follow
    // the power law.
    let mut local_tables: Vec<AliasTable> = Vec::with_capacity(communities);
    for c in 0..communities {
        let lo = c * comm_size;
        let hi = ((c + 1) * comm_size).min(n);
        local_tables.push(AliasTable::new(&weights[lo..hi]));
    }
    let global = AliasTable::new(&weights);
    let comm_of = |v: usize| (v / comm_size).min(communities - 1);

    let m = cfg.num_edges as usize;
    let batches = parallel_map_fixed_blocks(m, 65_536, |block, range| {
        let mut rng =
            SmallRng::seed_from_u64(cfg.seed ^ (block as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let mut out = Vec::with_capacity(range.len());
        for _ in range {
            let u = global.sample(&mut rng) as usize;
            let cu = comm_of(u);
            let cv = if rng.gen::<f64>() < cfg.intra_frac || communities == 1 {
                cu
            } else {
                // hop a geometric ring distance, either direction
                let hop = geometric_hop(&mut rng, cfg.hop_mean) % communities;
                if rng.gen::<bool>() {
                    (cu + hop) % communities
                } else {
                    (cu + communities - hop) % communities
                }
            };
            let lo = cv * comm_size;
            let v = lo + local_tables[cv].sample(&mut rng) as usize;
            out.push((u as VertexId, v as VertexId));
        }
        out
    });

    let mut b = GraphBuilder::with_capacity(n, 2 * m)
        .symmetrize(true)
        .drop_self_loops(true)
        .sort_neighbors(true);
    for batch in batches {
        for (u, v) in batch {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let g = social_graph(&SocialConfig::new(1_000, 5_000, 1));
        assert_eq!(g.num_vertices(), 1_000);
        // symmetrized: ~2x sampled edges minus self loops
        assert!(g.num_edges() > 9_000 && g.num_edges() <= 10_000);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let a = social_graph(&SocialConfig::new(500, 2_000, 9));
        let b = social_graph(&SocialConfig::new(500, 2_000, 9));
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_adjacency() {
        let g = social_graph(&SocialConfig::new(300, 1_000, 5));
        for (u, v) in g.iter_edges() {
            assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn heavy_tail_present() {
        let g = social_graph(&SocialConfig::new(4_000, 40_000, 3));
        let n = g.num_vertices();
        let avg = g.num_edges() as f64 / n as f64;
        let max = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap();
        assert!(max as f64 > avg * 8.0, "max {max} vs avg {avg:.1}");
    }

    #[test]
    fn community_structure_gives_traversal_depth() {
        // 16k vertices in ~16 communities: BFS from anywhere should need
        // well over the 2-3 levels of an unstructured small world.
        let g = social_graph(&SocialConfig::new(16_384, 80_000, 7));
        // simple BFS level count from vertex 0's component
        let n = g.num_vertices();
        let mut dist = vec![u32::MAX; n];
        dist[0] = 0;
        let mut frontier = vec![0u32];
        let mut levels = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &t in g.neighbors(v) {
                    if dist[t as usize] == u32::MAX {
                        dist[t as usize] = levels + 1;
                        next.push(t);
                    }
                }
            }
            frontier = next;
            levels += 1;
        }
        assert!(
            levels >= 5,
            "expected community-driven depth, got {levels} levels"
        );
    }

    #[test]
    fn hubs_spread_across_id_space() {
        let g = social_graph(&SocialConfig::new(4_000, 40_000, 17));
        let top = (0..4_000 as VertexId).max_by_key(|&v| g.degree(v)).unwrap();
        assert_ne!(top, 0, "weight permutation must decouple degree from id");
    }

    #[test]
    fn mostly_intra_community_edges() {
        let cfg = SocialConfig::new(8_192, 40_000, 2);
        let g = social_graph(&cfg);
        let cs = 1024;
        let mut intra = 0u64;
        let mut total = 0u64;
        for (u, v) in g.iter_edges() {
            total += 1;
            if (u as usize) / cs == (v as usize) / cs {
                intra += 1;
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra fraction {frac:.2}");
    }

    #[test]
    #[should_panic(expected = "two vertices")]
    fn rejects_tiny() {
        social_graph(&SocialConfig::new(1, 10, 1));
    }
}
