//! Walker alias method for O(1) sampling from a discrete distribution.
//!
//! The Chung–Lu social generator draws both endpoints of every edge from a
//! power-law weight distribution; with millions of edges an O(log n)
//! binary-search per draw dominates generation time, so we use the classic
//! alias table: O(n) build, O(1) sample.

use rand::Rng;

/// Pre-processed discrete distribution supporting O(1) sampling.
pub struct AliasTable {
    /// Acceptance probability of each bucket's "own" outcome.
    prob: Vec<f64>,
    /// Fallback outcome of each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights. Panics if `weights` is empty, any
    /// weight is negative/non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        // Scale so the average bucket holds probability 1.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Large bucket donates the deficit of the small one.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining takes its own outcome.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 8]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let expect = draws as f64 / 8.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "count {c} vs {expect}"
            );
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[9.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut c0 = 0u32;
        let draws = 100_000;
        for _ in 0..draws {
            if t.sample(&mut rng) == 0 {
                c0 += 1;
            }
        }
        let frac = c0 as f64 / draws as f64;
        assert!((frac - 0.9).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
