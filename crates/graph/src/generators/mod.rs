//! Synthetic graph generators.
//!
//! The paper evaluates on four real-world graphs (friendster-konect,
//! friendster-snap, gsh-2015-host, uk-2007-04) plus R-MAT synthetics. The
//! real datasets are multi-billion-edge downloads we cannot ship, so the
//! dataset catalog ([`crate::datasets`]) instantiates scaled stand-ins from
//! these generators, matching each dataset's *structural class*:
//!
//! * [`rmat`] — the R-MAT recursive-matrix generator the paper itself uses
//!   for its scaling study (Figure 11, "RMAT-rand").
//! * [`social`] — Chung–Lu power-law graphs for the two Friendster social
//!   networks (undirected, heavy-tailed degrees, little locality).
//! * [`web`] — host-locality directed graphs for the two web crawls
//!   (directed, strong intra-host locality, power-law host popularity).
//! * [`uniform`] — Erdős–Rényi style uniform graphs (tests and ablations).
//!
//! All generators are deterministic given a seed.

pub mod alias;
pub mod rmat;
pub mod social;
pub mod uniform;
pub mod web;

pub use rmat::{rmat_graph, RmatConfig};
pub use social::{social_graph, SocialConfig};
pub use uniform::uniform_graph;
pub use web::{web_graph, WebConfig};
