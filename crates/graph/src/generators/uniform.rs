//! Uniform (Erdős–Rényi G(n, m)) graphs, for tests and ablations where a
//! structureless baseline is wanted.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;

/// Sample `num_edges` directed edges uniformly at random (self-loops
/// removed, neighbors sorted). Set `undirected` to mirror each edge.
pub fn uniform_graph(num_vertices: usize, num_edges: u64, undirected: bool, seed: u64) -> Csr {
    assert!(num_vertices >= 2, "need at least two vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(num_vertices, num_edges as usize)
        .symmetrize(undirected)
        .drop_self_loops(true)
        .sort_neighbors(true);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_vertices) as VertexId;
        let v = rng.gen_range(0..num_vertices) as VertexId;
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = uniform_graph(100, 500, false, 1);
        let b = uniform_graph(100, 500, false, 1);
        assert_eq!(a, b);
        assert!(a.num_edges() <= 500);
        a.validate().unwrap();
    }

    #[test]
    fn undirected_mirrors() {
        let g = uniform_graph(50, 200, true, 2);
        for (u, v) in g.iter_edges() {
            assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn degrees_roughly_uniform() {
        let g = uniform_graph(100, 10_000, false, 3);
        let avg = g.num_edges() as f64 / 100.0;
        for v in 0..100 {
            let d = g.degree(v) as f64;
            assert!(d > avg * 0.5 && d < avg * 1.5, "degree {d} vs avg {avg}");
        }
    }
}
