//! Host-locality web-graph generator — stand-in for gsh-2015 / uk-2007.
//!
//! Web crawls (the paper's GS and UK datasets) are *directed* with strong
//! structure that the evaluation depends on:
//!
//! * crawlers number pages host-by-host, so most links stay inside a small
//!   id window (the same host) — this is why UK shows the lowest active
//!   ratios in the paper's Table 1 (BFS 0.8 %);
//! * within a host, pages form deep link hierarchies (URL trees): a link
//!   mostly points a short id distance away, so a traversal entering a
//!   host takes many iterations to reach its deep pages;
//! * cross-host links go either to topologically nearby hosts (same
//!   domain/topic) or to a power-law-popular set of hub hosts, and they
//!   predominantly land on the target host's *front pages* (site roots).
//!
//! Together these give BFS/SSSP the long, thin frontier profile of a real
//! crawl while keeping generation O(E).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::alias::AliasTable;
use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::types::VertexId;
use ascetic_par::parallel_map_fixed_blocks;

/// Parameters for [`web_graph`].
#[derive(Clone, Copy, Debug)]
pub struct WebConfig {
    /// Number of vertices (pages).
    pub num_vertices: usize,
    /// Number of directed edges (links).
    pub num_edges: u64,
    /// Approximate number of hosts.
    pub num_hosts: usize,
    /// Fraction of links that stay within the source's host.
    pub intra_frac: f64,
    /// Mean intra-host id distance of a link (geometric; controls crawl
    /// depth — smaller means deeper hierarchies).
    pub intra_span_mean: f64,
    /// Of the cross-host links, the fraction that go to ring-nearby hosts
    /// (the rest go to power-law-popular hub hosts).
    pub near_host_frac: f64,
    /// Power-law exponent for host popularity.
    pub host_gamma: f64,
    /// Fraction of each host reachable as a "front page" cross-host link
    /// target.
    pub front_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WebConfig {
    /// uk-2007-ish defaults: ~250-page hosts, 80 % intra-host links with
    /// mean span 6 (deep hierarchies), cross links mostly to nearby hosts,
    /// landing on the front 10 % of the target host.
    pub fn new(num_vertices: usize, num_edges: u64, seed: u64) -> Self {
        WebConfig {
            num_vertices,
            num_edges,
            num_hosts: (num_vertices / 250).max(4),
            intra_frac: 0.8,
            intra_span_mean: 6.0,
            near_host_frac: 0.7,
            host_gamma: 2.2,
            front_frac: 0.1,
            seed,
        }
    }
}

/// Geometric sample ≥ 1 with mean ≈ `mean` (capped to keep generation O(1)).
#[inline]
fn geometric(rng: &mut SmallRng, mean: f64) -> usize {
    let p = 1.0 / mean.max(1.0);
    let mut k = 1usize;
    while rng.gen::<f64>() > p && k < 256 {
        k += 1;
    }
    k
}

/// Generate a directed host-locality web graph (self-loops removed,
/// neighbors sorted).
pub fn web_graph(cfg: &WebConfig) -> Csr {
    let n = cfg.num_vertices;
    assert!(n >= 2, "need at least two vertices");
    assert!(cfg.num_hosts >= 1 && cfg.num_hosts <= n, "bad host count");
    assert!(
        (0.0..=1.0).contains(&cfg.intra_frac),
        "intra_frac must be in [0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.near_host_frac),
        "near_host_frac must be in [0,1]"
    );

    // Host boundaries: power-law host sizes over contiguous id ranges
    // (crawl order). host_starts[h]..host_starts[h+1] are host h's pages.
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let h = cfg.num_hosts;
    let raw: Vec<f64> = (0..h)
        .map(|i| (i as f64 + 1.5).powf(-1.0 / (cfg.host_gamma - 1.0)))
        .collect();
    let total: f64 = raw.iter().sum();
    let mut host_starts = Vec::with_capacity(h + 1);
    host_starts.push(0usize);
    let mut acc = 0.0;
    for (i, r) in raw.iter().enumerate() {
        acc += r;
        let mut end = ((acc / total) * n as f64).round() as usize;
        end = end.clamp(host_starts[i] + 1, n - (h - i - 1)).min(n);
        host_starts.push(end);
    }
    *host_starts.last_mut().unwrap() = n;

    let host_of = |v: usize| -> usize {
        match host_starts.binary_search(&v) {
            Ok(i) => i.min(h - 1),
            Err(i) => i - 1,
        }
    };

    // Host popularity for hub links: power law, permuted so popular hosts
    // are spread over the crawl order.
    let mut pop: Vec<f64> = (0..h).map(|i| (i as f64 + 1.0).powf(-1.2)).collect();
    for i in (1..h).rev() {
        let j = rng.gen_range(0..=i);
        pop.swap(i, j);
    }
    let host_table = AliasTable::new(&pop);

    let mean_deg = (cfg.num_edges as f64 / n as f64).max(0.0);
    let batches = parallel_map_fixed_blocks(n, 16_384, |block, range| {
        let mut rng =
            SmallRng::seed_from_u64(cfg.seed ^ (block as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let mut out: Vec<(VertexId, VertexId)> =
            Vec::with_capacity((range.len() as f64 * mean_deg) as usize + 4);
        for v in range {
            let deg = rng.gen_range(0.0..=2.0 * mean_deg).round() as usize;
            let my_host = host_of(v);
            let (hs, he) = (host_starts[my_host], host_starts[my_host + 1]);
            for _ in 0..deg {
                let dst = if rng.gen::<f64>() < cfg.intra_frac && he - hs > 1 {
                    // intra-host: short geometric id hop (URL-tree depth)
                    let span = geometric(&mut rng, cfg.intra_span_mean);
                    let down = rng.gen::<f64>() < 0.7; // links mostly go deeper
                    let cand = if down {
                        v + span
                    } else {
                        v.saturating_sub(span)
                    };
                    cand.clamp(hs, he - 1)
                } else {
                    // cross-host: nearby host or popular hub host...
                    let th = if rng.gen::<f64>() < cfg.near_host_frac {
                        let hop = geometric(&mut rng, 2.0);
                        if rng.gen::<bool>() {
                            (my_host + hop) % h
                        } else {
                            (my_host + h - hop % h) % h
                        }
                    } else {
                        host_table.sample(&mut rng) as usize
                    };
                    // ...landing on one of the target's front pages
                    let (ts, te) = (host_starts[th], host_starts[th + 1]);
                    let front = ((te - ts) as f64 * cfg.front_frac).ceil() as usize;
                    rng.gen_range(ts..(ts + front.max(1)).min(te))
                };
                if dst != v {
                    out.push((v as VertexId, dst as VertexId));
                }
            }
        }
        out
    });

    let mut b = GraphBuilder::with_capacity(n, cfg.num_edges as usize)
        .drop_self_loops(true)
        .sort_neighbors(true);
    for batch in batches {
        for (u, v) in batch {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let cfg = WebConfig::new(2_000, 16_000, 1);
        let g = web_graph(&cfg);
        assert_eq!(g.num_vertices(), 2_000);
        let m = g.num_edges();
        assert!(m > 12_000 && m < 20_000, "edges {m}");
        g.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let cfg = WebConfig::new(1_000, 5_000, 4);
        assert_eq!(web_graph(&cfg), web_graph(&cfg));
    }

    #[test]
    fn mostly_local_targets() {
        let cfg = WebConfig::new(5_000, 40_000, 2);
        let g = web_graph(&cfg);
        let mut local = 0u64;
        let mut total = 0u64;
        for (u, v) in g.iter_edges() {
            total += 1;
            if (u as i64 - v as i64).unsigned_abs() < 500 {
                local += 1;
            }
        }
        let frac = local as f64 / total as f64;
        assert!(frac > 0.6, "locality fraction {frac:.2}");
    }

    #[test]
    fn directed_not_necessarily_symmetric() {
        let cfg = WebConfig::new(1_000, 8_000, 6);
        let g = web_graph(&cfg);
        let asym = g
            .iter_edges()
            .filter(|&(u, v)| !g.neighbors(v).contains(&u))
            .count();
        assert!(asym > 0, "a web crawl should have one-way links");
    }

    #[test]
    fn deep_crawl_frontiers() {
        // BFS from the largest host's root must take many levels: the
        // intra-host hierarchies are deep by construction.
        let g = web_graph(&WebConfig::new(20_000, 160_000, 3));
        let n = g.num_vertices();
        let src = (0..n as VertexId).max_by_key(|&v| g.degree(v)).unwrap();
        let mut dist = vec![u32::MAX; n];
        dist[src as usize] = 0;
        let mut frontier = vec![src];
        let mut levels = 0u32;
        let mut reached = 1usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &t in g.neighbors(v) {
                    if dist[t as usize] == u32::MAX {
                        dist[t as usize] = levels + 1;
                        next.push(t);
                        reached += 1;
                    }
                }
            }
            frontier = next;
            levels += 1;
        }
        assert!(
            reached > n / 2,
            "BFS should reach most pages: {reached}/{n}"
        );
        assert!(levels >= 10, "expected deep crawl, got {levels} levels");
    }

    #[test]
    #[should_panic(expected = "intra_frac")]
    fn rejects_bad_fraction() {
        let mut cfg = WebConfig::new(100, 500, 1);
        cfg.intra_frac = 1.5;
        web_graph(&cfg);
    }
}
