#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ascetic — facade crate
//!
//! Reproduction of *"Ascetic: Enhancing Cross-Iterations Data Efficiency in
//! Out-of-Memory Graph Processing on GPUs"* (Tang et al., ICPP 2021).
//!
//! This crate re-exports the workspace members under one roof so examples
//! and downstream users can depend on a single crate:
//!
//! * [`obs`] — observability: metric registry, event log, JSON helpers.
//! * [`graph`] — CSR graphs, generators, chunking, the scaled dataset catalog.
//! * [`par`] — parallel-for, atomic bitmaps, atomic reductions, scans.
//! * [`sim`] — the simulated GPU: device memory, PCIe, streams, UVM.
//! * [`algos`] — push-based vertex programs: BFS, SSSP, CC, PageRank.
//! * [`core`] — the Ascetic framework itself (static + on-demand regions).
//! * [`baselines`] — PT, UVM and Subway comparison systems.
//! * [`serve`] — multi-query serving: shared-residency scheduling, batching.
//! * [`mutate`] — streaming graph mutations: JSONL ingest, delta-patching,
//!   incremental recompute.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use ascetic_algos as algos;
pub use ascetic_baselines as baselines;
pub use ascetic_core as core;
pub use ascetic_graph as graph;
pub use ascetic_mutate as mutate;
pub use ascetic_obs as obs;
pub use ascetic_par as par;
pub use ascetic_serve as serve;
pub use ascetic_sim as sim;
