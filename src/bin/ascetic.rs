//! `ascetic` — command-line driver for the out-of-core graph framework.
//!
//! ```text
//! ascetic generate --kind social --vertices 100000 --edges 2000000 -o g.beg
//! ascetic info g.beg
//! ascetic run g.beg --algo bfs --system ascetic --mem-frac 0.4
//! ascetic run fk@2000 --algo pr --system subway
//! ascetic compare g.beg --algo cc --mem-frac 0.4
//! ```
//!
//! Graphs are file paths (binary `.beg` from `generate`, or whitespace
//! `src dst [w]` text) or builtin dataset specs `gs|fk|fs|uk@SCALE`
//! (stand-ins for the paper's Table 3 datasets at `1/SCALE` size).
//!
//! `run --mutations FILE` streams JSONL edge insert/delete batches through
//! the session after the base run, delta-patching resident chunks and
//! incrementally repairing the answer after every batch; `--verify` checks
//! each repaired output bit-identically against a cold recompute.

use std::collections::HashMap;
use std::process::ExitCode;

use ascetic::algos::{Algo, AlgoError, AnyProgram, ProgramOpts};
use ascetic::baselines::{AnySystem, PtSystem, SubwaySystem, UvmSystem};
use ascetic::core::{
    run_fleet, AsceticConfig, AsceticSystem, CompressionMode, DirectionMode, FillPolicy,
    FleetConfig, FleetRunReport, OutOfCoreSystem, PrefetchMode, RunReport,
};
use ascetic::graph::datasets::{weighted_variant, Dataset, DatasetId};
use ascetic::graph::generators::{
    rmat_graph, social_graph, uniform_graph, web_graph, RmatConfig, SocialConfig, WebConfig,
};
use ascetic::graph::stats::{degree_histogram, degree_stats};
use ascetic::graph::{edgelist, Csr};
use ascetic::sim::DeviceConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let r = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "info" => cmd_info(rest),
        "run" => cmd_run(rest),
        "pipeline" => cmd_pipeline(rest),
        "serve" => cmd_serve(rest),
        "trace" => cmd_trace(rest),
        "compare" => cmd_compare(rest),
        "-h" | "--help" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "ascetic — out-of-GPU-memory graph processing (Ascetic, ICPP'21 reproduction)

USAGE:
  ascetic generate --kind social|web|rmat|uniform --vertices N --edges M
                   [--seed S] [--undirected] [--weighted] -o FILE
  ascetic info GRAPH
  ascetic run GRAPH --algo bfs|sssp|cc|pr|kcore|msbfs|closeness|lp|bc
                   [--system ascetic|subway|pt|uvm|memory]
                   [--mem BYTES | --mem-frac F] [--source V] [--k-param F] [--kcore-k K]
                   [--static-ratio R] [--no-overlap] [--fill front|rear|random|lazy]
                   [--chunk BYTES] [--no-adaptive] [--compression off|always|adaptive]
                   [--prefetch off|next-frontier|hotness]
                   [--direction push|pull|adaptive] (pull gathers unvisited
                    vertices' in-edges from a chunked CSC mirror; adaptive
                    switches per iteration on frontier density — bfs|cc|pr
                    only, outputs byte-identical to push)
                   [--devices N] [--fabric pcie|nvlink] (N>1: shard across an
                    N-device fleet — ascetic system only; outputs stay
                    byte-identical to one device)
                   [--iter-csv FILE] [--trace FILE.json]
                   [--trace-out FILE.json|FILE.jsonl] (hierarchical span trace:
                    .json is Chrome/Perfetto format for ui.perfetto.dev,
                    .jsonl is the compact form `ascetic trace summarize` reads)
                   [--metrics-out FILE.jsonl] [--summary text|json|csv|md]
                   [--pool-metrics] (append host worker-pool telemetry — wall-clock,
                    non-deterministic — as an extra JSONL line / stdout object)
                   [--mutations FILE.jsonl] [--verify] (stream edge insert/delete
                    batches through the session after the base run: resident
                    chunks are delta-patched in place and the answer is
                    incrementally repaired after every batch; lines are
                    {{\"op\":\"insert|delete\",\"src\":..,\"dst\":..[,\"weight\":W][,\"batch\":B]}};
                    --verify recomputes each batch cold and demands bit-identity
                    — ascetic system, single device only)
  ascetic pipeline GRAPH --algos bfs,cc,pr,lp [--mem BYTES | --mem-frac F]
                   (one Ascetic session: the static region is prestored once
                    and reused by every algorithm — paper §4.3)
  ascetic serve GRAPH (--trace FILE.jsonl | --synthetic N [--seed S] [--spacing-ns T])
                   [--mutations M] (with --synthetic: interleave M synthetic edge
                    mutations; trace files may carry their own
                    {{\"mutate\":\"insert|delete\",\"src\":..,\"dst\":..,\"at\":NS}} lines —
                    live sessions are delta-patched at each batch's instant)
                   [--policy fifo|sjf|residency] [--no-batching]
                   [--devices N] [--fabric pcie|nvlink] (route jobs across an
                    N-device fleet with static-region replication)
                   [--mem BYTES | --mem-frac F] [--summary text|json]
                   [--trace-out FILE.json|FILE.jsonl] (per-job lifecycle spans)
                   (multi-query serving: admission control, shared-residency
                    scheduling, BFS/SSSP batching; trace lines are
                    {{\"id\":..,\"algo\":\"bfs\",\"source\":..,\"submit_ns\":..}})
  ascetic trace summarize FILE.jsonl [--top K]
                   (per-track span counts + busy/utilization, top-K longest
                    spans, schema-version check of a --trace-out .jsonl file)
  ascetic compare GRAPH --algo ALGO [--mem BYTES | --mem-frac F]

GRAPH: a file path (.beg binary or 'src dst [w]' text), or a builtin
       dataset spec gs|fk|fs|uk@SCALE (e.g. fk@2000 = friendster-konect
       stand-in at 1/2000 of the paper's size)."
    );
    ExitCode::FAILURE
}

/// Minimal flag parser: positionals plus `--key value` / `--bool-flag`.
struct Opts {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

const BOOL_FLAGS: [&str; 8] = [
    "undirected",
    "weighted",
    "no-overlap",
    "no-adaptive",
    "quiet",
    "pool-metrics",
    "no-batching",
    "verify",
];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        flags: HashMap::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                o.flags.insert(name.to_string(), "true".to_string());
            } else {
                let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                o.flags.insert(name.to_string(), v.clone());
            }
        } else if let Some(name) = a.strip_prefix("-") {
            let v = it.next().ok_or_else(|| format!("-{name} needs a value"))?;
            o.flags.insert(name.to_string(), v.clone());
        } else {
            o.positional.push(a.clone());
        }
    }
    Ok(o)
}

impl Opts {
    fn get(&self, k: &str) -> Option<&str> {
        self.flags.get(k).map(|s| s.as_str())
    }
    fn parse<T: std::str::FromStr>(&self, k: &str) -> Result<Option<T>, String> {
        match self.get(k) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value for --{k}: {v}")),
        }
    }
    fn require<T: std::str::FromStr>(&self, k: &str) -> Result<T, String> {
        self.parse(k)?.ok_or_else(|| format!("missing --{k}"))
    }
    fn has(&self, k: &str) -> bool {
        self.flags.contains_key(k)
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let kind: String = o.require("kind")?;
    let n: usize = o.require("vertices")?;
    let m: u64 = o.require("edges")?;
    let seed: u64 = o.parse("seed")?.unwrap_or(42);
    let out: String = o
        .parse::<String>("o")?
        .or(o.parse::<String>("out")?)
        .ok_or("missing -o FILE")?;
    let undirected = o.has("undirected");

    eprintln!("generating {kind} graph: {n} vertices, {m} edges, seed {seed} ...");
    let mut g = match kind.as_str() {
        "social" => social_graph(&SocialConfig::new(n, m / 2, seed)),
        "web" => web_graph(&WebConfig::new(n, m, seed)),
        "rmat" => {
            let scale = 64 - (n.max(2) as u64 - 1).leading_zeros();
            rmat_graph(&RmatConfig::new(scale, m, seed).undirected(undirected))
        }
        "uniform" => uniform_graph(n, m, undirected, seed),
        other => return Err(format!("unknown --kind {other}")),
    };
    if o.has("weighted") {
        g = weighted_variant(&g);
    }
    write_graph(&g, &out)?;
    eprintln!(
        "wrote {} ({} vertices, {} edges, {:.1} MB of edge data)",
        out,
        g.num_vertices(),
        g.num_edges(),
        g.edge_bytes() as f64 / 1e6
    );
    Ok(())
}

fn write_graph(g: &Csr, path: &str) -> Result<(), String> {
    if path.ends_with(".txt") || path.ends_with(".el") {
        let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        edgelist::write_text(g, f).map_err(|e| e.to_string())
    } else {
        edgelist::save_binary(g, path).map_err(|e| e.to_string())
    }
}

/// Load a graph argument: builtin `name@scale` or a file path.
fn load_graph(spec: &str) -> Result<Csr, String> {
    if let Some((name, scale)) = spec.split_once('@') {
        let id = match name.to_lowercase().as_str() {
            "gs" => DatasetId::Gs,
            "fk" => DatasetId::Fk,
            "fs" => DatasetId::Fs,
            "uk" => DatasetId::Uk,
            other => return Err(format!("unknown builtin dataset '{other}'")),
        };
        let scale: u64 = scale
            .parse()
            .map_err(|_| format!("bad scale in '{spec}'"))?;
        eprintln!("building {} stand-in at scale 1/{scale} ...", id.name());
        return Ok(Dataset::build(id, scale).graph);
    }
    if spec.ends_with(".txt") || spec.ends_with(".el") {
        Ok(edgelist::load_text(spec, None)
            .map_err(|e| e.to_string())?
            .build())
    } else {
        edgelist::load_binary(spec).map_err(|e| e.to_string())
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let spec = o.positional.first().ok_or("missing GRAPH")?;
    let g = load_graph(spec)?;
    let s = degree_stats(&g);
    println!("graph:        {spec}");
    println!("vertices:     {}", s.num_vertices);
    println!("edges:        {}", s.num_edges);
    println!("weighted:     {}", g.is_weighted());
    println!("edge data:    {:.2} MB", g.edge_bytes() as f64 / 1e6);
    println!("mean degree:  {:.2}", s.mean);
    println!("max degree:   {}", s.max);
    println!("isolated:     {}", s.isolated);
    println!("degree gini:  {:.3}", s.gini);
    let hist = degree_histogram(&g);
    if !hist.is_empty() {
        println!("degree histogram (log2 buckets):");
        let max = *hist.iter().max().unwrap() as f64;
        for (k, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let bar = "#".repeat(((count as f64 / max) * 40.0).ceil() as usize);
            println!("  2^{k:<2} {count:>8} {bar}");
        }
    }
    Ok(())
}

/// Deterministic evenly-spread source sample for msbfs/closeness.
fn sample_sources(g: &Csr, k: usize) -> Vec<u32> {
    let n = g.num_vertices() as u32;
    let mut s: Vec<u32> = (0..k as u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % n.max(1))
        .collect();
    s.sort_unstable();
    s.dedup();
    s
}

/// Resolve the device from `--mem` / `--mem-frac` (default: 40% of the
/// dataset's edge bytes, which oversubscribes like the paper's setup).
fn device_from(o: &Opts, g: &Csr) -> Result<DeviceConfig, String> {
    let mem = if let Some(m) = o.parse::<u64>("mem")? {
        m
    } else {
        let frac: f64 = o.parse("mem-frac")?.unwrap_or(0.4);
        if !(0.01..=100.0).contains(&frac) {
            return Err("--mem-frac out of range".into());
        }
        g.num_vertices() as u64 * 24 + (g.edge_bytes() as f64 * frac) as u64
    };
    Ok(DeviceConfig::p100(mem))
}

fn parse_compression_mode(s: &str) -> Result<CompressionMode, String> {
    match s {
        "off" => Ok(CompressionMode::Off),
        "always" => Ok(CompressionMode::Always),
        "adaptive" => Ok(CompressionMode::Adaptive),
        other => Err(format!(
            "unknown --compression {other} (off|always|adaptive)"
        )),
    }
}

/// `--direction` beats the ASCETIC_DIRECTION environment default.
fn parse_direction(o: &Opts) -> Result<Option<DirectionMode>, String> {
    let dir = match o.get("direction") {
        Some(d) => Some(d.to_string()),
        None => std::env::var("ASCETIC_DIRECTION").ok(),
    };
    match dir {
        None => Ok(None),
        Some(d) => DirectionMode::parse(&d)
            .map(Some)
            .ok_or_else(|| format!("unknown --direction {d} (push|pull|adaptive)")),
    }
}

fn ascetic_config(o: &Opts, dev: DeviceConfig) -> Result<AsceticConfig, String> {
    let mut cfg = AsceticConfig::new(dev);
    if let Some(k) = o.parse::<f64>("k-param")? {
        cfg = cfg.with_k(k);
    }
    if let Some(r) = o.parse::<f64>("static-ratio")? {
        cfg = cfg.with_static_ratio(r);
    }
    if let Some(c) = o.parse::<usize>("chunk")? {
        cfg = cfg.with_chunk_bytes(c);
    }
    if o.has("no-overlap") {
        cfg = cfg.with_overlap(false);
    }
    if o.has("no-adaptive") {
        cfg = cfg.with_adaptive(false);
    }
    if let Some(f) = o.get("fill") {
        cfg = cfg.with_fill(match f {
            "front" => FillPolicy::Front,
            "rear" => FillPolicy::Rear,
            "random" => FillPolicy::Random { seed: 7 },
            "lazy" => FillPolicy::Lazy,
            other => return Err(format!("unknown --fill {other}")),
        });
    }
    if let Some(m) = o.get("compression") {
        cfg = cfg.with_compression(parse_compression_mode(m)?);
    }
    // --prefetch beats the ASCETIC_PREFETCH environment default
    let prefetch = match o.get("prefetch") {
        Some(p) => Some(p.to_string()),
        None => std::env::var("ASCETIC_PREFETCH").ok(),
    };
    if let Some(p) = prefetch {
        let mode = PrefetchMode::parse(&p)
            .ok_or_else(|| format!("unknown --prefetch {p} (off|next-frontier|hotness)"))?;
        cfg = cfg.with_prefetch(mode);
    }
    if let Some(m) = parse_direction(o)? {
        cfg = cfg.with_direction(m);
    }
    // default chunk scaled sensibly for small inputs
    if o.get("chunk").is_none() {
        let budget = dev.mem_bytes;
        if budget < 64 * (16 * 1024) {
            cfg = cfg.with_chunk_bytes(((budget / 64).next_multiple_of(8) as usize).max(64));
        }
    }
    // surface bad knob combinations as a clean CLI error, not a panic
    cfg.build().map_err(|e| e.to_string())
}

/// Instantiate `algo` from the CLI knobs: `--source` roots single-source
/// programs, `--kcore-k` parameterizes kcore, and multi-source programs
/// draw their registry-default sample count from the graph.
fn program_for(o: &Opts, g: &Csr, algo: Algo) -> Result<AnyProgram, String> {
    let source: u32 = o.parse("source")?.unwrap_or(0);
    let k: u32 = o.parse("kcore-k")?.unwrap_or(4);
    let count = algo.default_source_count();
    let sources = if count > 0 {
        sample_sources(g, count)
    } else {
        vec![source]
    };
    Ok(algo.program(&ProgramOpts { source, sources, k }))
}

fn run_system(o: &Opts, system: &str, g: &Csr, algo: Algo) -> Result<RunReport, String> {
    let dev = device_from(o, g)?;
    let tracing = o.has("trace-flag") || o.get("trace").is_some() || o.get("trace-out").is_some();
    // an event log is only worth recording when it will be exported
    let events = o.get("metrics-out").is_some();
    let sys: AnySystem = match system {
        "ascetic" => {
            let cfg = ascetic_config(o, dev)?
                .with_tracing(tracing)
                .with_events(events);
            AsceticSystem::new(cfg).into()
        }
        "subway" => {
            let mode = match o.get("compression") {
                Some(m) => parse_compression_mode(m)?,
                None => CompressionMode::Off,
            };
            SubwaySystem::new(dev)
                .with_tracing(tracing)
                .with_events(events)
                .with_compression(mode)
                .into()
        }
        "pt" => PtSystem::new(dev)
            .with_tracing(tracing)
            .with_events(events)
            .into(),
        "uvm" => UvmSystem::new(dev)
            .with_tracing(tracing)
            .with_events(events)
            .into(),
        other => return Err(format!("unknown --system {other}")),
    };
    // A weighted program may auto-weight the graph below; the vertex
    // count (what prepare checks) is unchanged by weighting, and the
    // session ships weighted payloads raw, so preparing against `g`
    // stays valid.
    sys.prepare(g).map_err(|e| e.to_string())?;
    let prog = program_for(o, g, algo)?;
    if algo.weighted() && !g.is_weighted() {
        let wg = weighted_variant(g);
        Ok(sys.run(&wg, &prog))
    } else {
        Ok(sys.run(g, &prog))
    }
}

/// Eight-level unicode sparkline of per-iteration activity.
fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    // downsample to at most 60 columns
    let cols = values.len().min(60);
    let mut out = String::with_capacity(cols * 3);
    for c in 0..cols {
        let lo = c * values.len() / cols;
        let hi = ((c + 1) * values.len() / cols).max(lo + 1);
        let v = values[lo..hi].iter().copied().max().unwrap_or(0);
        let idx = ((v as u128 * 7) / max as u128) as usize;
        out.push(BARS[idx]);
    }
    out
}

fn write_iter_csv(r: &RunReport, path: &str) -> Result<(), String> {
    use std::io::Write;
    let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    writeln!(
        f,
        "iteration,active_vertices,active_edges,static_edges,payload_bytes,time_ns"
    )
    .map_err(|e| e.to_string())?;
    for (i, it) in r.per_iter.iter().enumerate() {
        writeln!(
            f,
            "{},{},{},{},{},{}",
            i, it.active_vertices, it.active_edges, it.static_edges, it.payload_bytes, it.time_ns
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn print_report(r: &RunReport, g: &Csr) {
    // the stable summary lives on the report's Display impl; the CLI adds
    // the graph-relative ratio and the activity sparkline
    print!("{r}");
    println!(
        "xfer/dataset:      {:.2}x",
        r.total_bytes_with_prestore() as f64 / g.edge_bytes() as f64
    );
    if r.per_iter.len() > 1 {
        let activity: Vec<u64> = r.per_iter.iter().map(|i| i.active_edges).collect();
        println!("activity/iter:     {}", sparkline(&activity));
    }
}

/// Write the `--metrics-out` JSONL document: one meta line, one line per
/// recorded event, and one final metrics-snapshot line. With
/// `include_pool`, a `{"kind":"pool",...}` line carrying the host
/// worker-pool telemetry (wall-clock, non-deterministic — deliberately
/// kept out of the run's deterministic metrics) is appended.
fn write_metrics_jsonl(
    r: &RunReport,
    graph: &str,
    path: &str,
    include_pool: bool,
) -> Result<(), String> {
    use ascetic::obs::json;
    let mut out = String::new();
    out.push_str("{\"kind\":\"meta\",");
    json::key_into("schema_version", &mut out);
    out.push_str(&ascetic::core::RUN_REPORT_SCHEMA_VERSION.to_string());
    out.push(',');
    json::key_into("system", &mut out);
    json::string_into(r.system, &mut out);
    out.push(',');
    json::key_into("algorithm", &mut out);
    json::string_into(r.algorithm, &mut out);
    out.push(',');
    json::key_into("graph", &mut out);
    json::string_into(graph, &mut out);
    out.push(',');
    json::key_into("events", &mut out);
    out.push_str(&r.events.as_ref().map_or(0, |e| e.len()).to_string());
    out.push(',');
    json::key_into("events_dropped", &mut out);
    out.push_str(&r.events_dropped.to_string());
    out.push(',');
    json::key_into("first_drop_at", &mut out);
    match r.first_drop_at {
        Some(t) => out.push_str(&t.to_string()),
        None => out.push_str("null"),
    }
    out.push_str("}\n");
    if let Some(events) = &r.events {
        out.push_str(&events.to_jsonl());
    }
    out.push_str("{\"kind\":\"metrics\",\"data\":");
    out.push_str(&r.metrics.to_json());
    out.push_str("}\n");
    if include_pool {
        out.push_str("{\"kind\":\"pool\",\"data\":");
        out.push_str(&ascetic::core::pool_metrics_snapshot().to_json());
        out.push_str("}\n");
    }
    std::fs::write(path, out).map_err(|e| e.to_string())
}

/// Write a hierarchical span trace: `.jsonl` gets the compact form that
/// `ascetic trace summarize` and [`Trace::from_jsonl`] read back; any
/// other extension gets the Chrome/Perfetto JSON array for
/// ui.perfetto.dev / chrome://tracing.
fn write_span_trace(trace: &ascetic::obs::Trace, path: &str) -> Result<(), String> {
    let ver = ascetic::core::RUN_REPORT_SCHEMA_VERSION;
    let text = if path.ends_with(".jsonl") {
        trace.to_jsonl(ver)
    } else {
        trace.to_perfetto_json(ver)
    };
    std::fs::write(path, text).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} spans on {} tracks to {path} (open .json in ui.perfetto.dev, \
         or `ascetic trace summarize` a .jsonl)",
        trace.spans().len(),
        trace.tracks().len()
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let spec = o.positional.first().ok_or("missing GRAPH")?;
    let algo: Algo = o
        .require::<String>("algo")?
        .parse()
        .map_err(|e: ascetic::algos::registry::UnknownAlgo| e.to_string())?;
    let system = o.get("system").unwrap_or("ascetic").to_string();
    // reject a forced pull on a push-only algorithm up front, before any
    // graph loading, with the typed registry error instead of a mid-run
    // panic
    if parse_direction(&o)? == Some(DirectionMode::Pull) && !algo.pull() {
        return Err(AlgoError::PullUnsupported {
            algo: algo.display(),
        }
        .to_string());
    }
    let g = load_graph(spec)?;
    if system == "memory" {
        let prog = program_for(&o, &g, algo)?;
        let res = if algo.weighted() && !g.is_weighted() {
            ascetic::algos::inmemory::run_in_memory(&weighted_variant(&g), &prog)
        } else {
            ascetic::algos::inmemory::run_in_memory(&g, &prog)
        };
        println!("system:            memory (oracle)");
        println!("iterations:        {}", res.iterations);
        println!("edges traversed:   {}", res.total_edges);
        println!(
            "avg active edges:  {:.2} % per iteration",
            res.avg_active_edge_fraction(&g) * 100.0
        );
        return Ok(());
    }
    let devices: usize = o.parse("devices")?.unwrap_or(1);
    if let Some(path) = o.get("mutations") {
        if system != "ascetic" {
            return Err(format!(
                "--mutations patches the ascetic session; --system {system} has none"
            ));
        }
        if devices > 1 {
            return Err("--mutations runs single-device (drop --devices)".into());
        }
        return cmd_run_mutations(&o, &g, algo, path);
    }
    if devices > 1 {
        if system != "ascetic" {
            return Err(format!(
                "--devices {devices} shards the ascetic system; --system {system} is single-device"
            ));
        }
        return cmd_run_fleet(&o, &g, algo, devices);
    }
    let rep = run_system(&o, &system, &g, algo)?;
    match o.get("summary").unwrap_or("text") {
        "text" => print_report(&rep, &g),
        "json" => println!("{}", rep.summary_json()),
        "csv" => print!("{}", rep.summary_csv()),
        "md" | "markdown" => print!("{}", rep.summary_markdown()),
        other => return Err(format!("unknown --summary {other} (text|json|csv|md)")),
    }
    let pool_metrics = o.has("pool-metrics");
    if let Some(path) = o.get("metrics-out") {
        write_metrics_jsonl(&rep, spec, path, pool_metrics)?;
        eprintln!(
            "wrote metrics snapshot + {} events to {path}",
            rep.events.as_ref().map_or(0, |e| e.len())
        );
    } else if pool_metrics {
        println!("{}", ascetic::core::pool_metrics_snapshot().to_json());
    }
    if let Some(path) = o.get("iter-csv") {
        write_iter_csv(&rep, path)?;
        eprintln!("wrote per-iteration log to {path}");
    }
    if let Some(path) = o.get("trace") {
        match &rep.trace {
            Some(spans) => {
                std::fs::write(path, ascetic::sim::chrome_trace_json(spans))
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "wrote {} spans to {path} (open in chrome://tracing or ui.perfetto.dev)",
                    spans.len()
                );
            }
            None => eprintln!("note: this system ran without tracing"),
        }
    }
    if let Some(path) = o.get("trace-out") {
        match &rep.span_trace {
            Some(trace) => write_span_trace(trace, path)?,
            None => eprintln!("note: this system ran without span tracing"),
        }
    }
    Ok(())
}

/// The `--mutations FILE` path of `ascetic run`: converge on the base
/// graph, then stream the file's insert/delete batches through the live
/// session — delta-patching resident chunks in place and incrementally
/// repairing the answer after every batch. `--verify` recomputes each
/// batch cold in memory and demands bit-identity; any mismatch is a
/// nonzero exit.
fn cmd_run_mutations(o: &Opts, g: &Csr, algo: Algo, path: &str) -> Result<(), String> {
    use ascetic::mutate::{parse_mutations, run_with_mutations};
    let dev = device_from(o, g)?;
    let cfg = ascetic_config(o, dev)?;
    let verify = o.has("verify");
    let weighted_run = algo.weighted() && !g.is_weighted();
    let wg = weighted_run.then(|| weighted_variant(g));
    let run_g = wg.as_ref().unwrap_or(g);
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read mutations {path}: {e}"))?;
    let batches = parse_mutations(&text, Some(run_g.num_vertices()), Some(run_g.is_weighted()))
        .map_err(|e| format!("{path}: {e}"))?;
    if batches.is_empty() {
        return Err(format!("{path}: the mutation file holds no batches"));
    }
    let prog = program_for(o, run_g, algo)?;
    let run = run_with_mutations(cfg, run_g, &prog, &batches, verify)
        .map_err(|(i, e)| format!("{path}: batch {i} is not applicable: {e}"))?;
    println!("system:            Ascetic (streaming mutations)");
    println!("algorithm:         {}", run.base.algorithm);
    println!(
        "base run:          {:>8.2} ms, {} iterations, fp {:016x}",
        run.base.sim_time_ns as f64 / 1e6,
        run.base.iterations,
        run.base.output.fingerprint()
    );
    println!(
        "\n{:>5} {:>6} {:>6} {:<8} {:>7} {:>11} {:>10} {:>6} {:>16} {:>7}",
        "batch",
        "+ins",
        "-del",
        "mode",
        "seeds",
        "patch",
        "repair",
        "iters",
        "fingerprint",
        "verify"
    );
    for b in &run.batches {
        println!(
            "{:>5} {:>6} {:>6} {:<8} {:>7} {:>9.2}KB {:>8.2}ms {:>6} {:016x} {:>7}",
            b.index,
            b.inserts,
            b.deletes,
            format!("{:?}", b.mode).to_lowercase(),
            b.seed_count,
            b.patch_wire_bytes as f64 / 1e3,
            b.repair_ns as f64 / 1e6,
            b.repair_iterations,
            b.fingerprint,
            match b.matches_recompute {
                Some(true) => "ok",
                Some(false) => "FAIL",
                None => "-",
            }
        );
    }
    let total_patch: u64 = run.batches.iter().map(|b| b.patch_wire_bytes).sum();
    let total_repair: u64 = run.batches.iter().map(|b| b.repair_ns).sum();
    println!(
        "\n{} batches: {:.2} KB spliced, {:.2} ms of repair, final fp {:016x}",
        run.batches.len(),
        total_patch as f64 / 1e3,
        total_repair as f64 / 1e6,
        run.final_fingerprint()
    );
    if verify {
        if !run.all_verified() {
            return Err("repaired output diverged from the cold recompute".into());
        }
        println!("every repaired output matches its cold recompute ✓");
    }
    Ok(())
}

/// `--fabric pcie|nvlink` → a [`FleetConfig`] over N devices.
fn fleet_config(o: &Opts, devices: usize) -> Result<FleetConfig, String> {
    match o.get("fabric").unwrap_or("pcie") {
        "pcie" => Ok(FleetConfig::pcie(devices)),
        "nvlink" => Ok(FleetConfig::nvlink(devices)),
        other => Err(format!("unknown --fabric {other} (pcie|nvlink)")),
    }
}

/// The `--devices N` (N>1) path of `ascetic run`: shard the graph across
/// an N-device fleet and run with cross-device frontier exchange. The
/// answer is byte-identical to the single-device run; only the timing
/// model changes.
fn cmd_run_fleet(o: &Opts, g: &Csr, algo: Algo, devices: usize) -> Result<(), String> {
    let dev = device_from(o, g)?;
    let tracing = o.get("trace-out").is_some();
    let cfg = ascetic_config(o, dev)?.with_tracing(tracing);
    let fleet = fleet_config(o, devices)?;
    let fabric = o.get("fabric").unwrap_or("pcie").to_string();
    let prog = program_for(o, g, algo)?;
    let rep = if algo.weighted() && !g.is_weighted() {
        let wg = weighted_variant(g);
        run_fleet(cfg, fleet, &wg, &prog)
    } else {
        run_fleet(cfg, fleet, g, &prog)
    };
    print_fleet_report(&rep, &fabric);
    if let Some(path) = o.get("trace-out") {
        match &rep.span_trace {
            Some(trace) => write_span_trace(trace, path)?,
            None => eprintln!("note: fleet ran without span tracing"),
        }
    }
    Ok(())
}

fn print_fleet_report(r: &FleetRunReport, fabric: &str) {
    println!(
        "system:            Ascetic fleet ({} devices, {fabric} fabric)",
        r.devices
    );
    println!("iterations:        {}", r.iterations);
    println!("output fp:         {:016x}", r.output.fingerprint());
    println!("makespan:          {:>8.2} ms", r.makespan_ns as f64 / 1e6);
    println!(
        "frontier exchange: {:>8.2} MB ({} peer / {} staged transfers, {:.2} MB over the wire)",
        r.exchange_bytes as f64 / 1e6,
        r.interconnect.peer_transfers,
        r.interconnect.staged_transfers,
        r.interconnect.total_bytes() as f64 / 1e6
    );
    println!(
        "\n{:<8} {:>10} {:>11} {:>12}",
        "device", "time", "prestore", "steady xfer"
    );
    for (i, d) in r.per_device.iter().enumerate() {
        println!(
            "{:<8} {:>8.2}ms {:>9.2}MB {:>10.2}MB",
            format!("dev{i}"),
            d.sim_time_ns as f64 / 1e6,
            d.prestore_bytes as f64 / 1e6,
            d.steady_bytes() as f64 / 1e6
        );
    }
}

fn cmd_pipeline(args: &[String]) -> Result<(), String> {
    use ascetic::core::session::AsceticSession;
    let o = parse_opts(args)?;
    let spec = o.positional.first().ok_or("missing GRAPH")?;
    let algos: String = o.require("algos")?;
    let g = load_graph(spec)?;
    if g.is_weighted() {
        return Err("pipeline runs unweighted algorithms; use an unweighted graph".into());
    }
    let dev = device_from(&o, &g)?;
    let cfg = ascetic_config(&o, dev)?;

    let mut session = AsceticSession::new(cfg, &g);
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>11} {:>11}",
        "step", "time", "iters", "steady xfer", "prestore", "static hit"
    );
    for name in algos.split(',') {
        let algo: Algo = name
            .trim()
            .parse()
            .map_err(|e: ascetic::algos::registry::UnknownAlgo| e.to_string())?;
        if algo.weighted() {
            return Err(format!(
                "pipeline runs unweighted algorithms; '{}' needs edge weights",
                algo.name()
            ));
        }
        let rep = session.run(&program_for(&o, &g, algo)?);
        let static_edges: u64 = rep.per_iter.iter().map(|i| i.static_edges).sum();
        let total: u64 = rep.per_iter.iter().map(|i| i.active_edges).sum();
        println!(
            "{:<10} {:>8.2}ms {:>8} {:>10.2}MB {:>9.2}MB {:>10.1}%",
            name.trim(),
            rep.sim_time_ns as f64 / 1e6,
            rep.iterations,
            rep.steady_bytes() as f64 / 1e6,
            rep.prestore_bytes as f64 / 1e6,
            static_edges as f64 / total.max(1) as f64 * 100.0
        );
    }
    println!(
        "\n{} runs over one prestored static region ({:.0}% of chunks resident)",
        session.runs(),
        session.resident_fraction() * 100.0
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use ascetic::serve::{
        parse_trace_mutating, serve_mutating, synthetic_mixed, synthetic_mutations, Policy,
        ServeConfig, TraceMutation,
    };
    let o = parse_opts(args)?;
    let spec = o.positional.first().ok_or("missing GRAPH")?;
    let g = load_graph(spec)?;
    if g.is_weighted() {
        return Err(
            "serve expects an unweighted graph; sssp jobs run on an auto-weighted variant".into(),
        );
    }
    let policy = match o.get("policy") {
        Some(p) => {
            Policy::parse(p).ok_or_else(|| format!("unknown --policy {p} (fifo|sjf|residency)"))?
        }
        None => Policy::ResidencyAffinity,
    };
    // a trace file (which may interleave mutation records), or the
    // deterministic synthetic mixed workload
    let (jobs, mutations): (Vec<_>, Vec<TraceMutation>) = if let Some(path) = o.get("trace") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
        let t = parse_trace_mutating(&text, Some(g.num_vertices())).map_err(|e| e.to_string())?;
        (t.jobs, t.mutations)
    } else if let Some(n) = o.parse::<usize>("synthetic")? {
        let seed = o.parse::<u64>("seed")?.unwrap_or(7);
        let spacing = o.parse::<u64>("spacing-ns")?.unwrap_or(0);
        let jobs = synthetic_mixed(n, g.num_vertices(), seed, spacing, 1);
        let muts = match o.parse::<usize>("mutations")? {
            Some(m) => synthetic_mutations(m, g.num_vertices(), seed, spacing.max(1)),
            None => Vec::new(),
        };
        (jobs, muts)
    } else {
        return Err("serve needs --trace FILE or --synthetic N".into());
    };
    if jobs.is_empty() {
        return Err("the trace holds no jobs".into());
    }
    // a forced pull with push-only jobs in the trace is handled per-job
    // at admission: those jobs come back rejected with the AlgoError text
    let dev = device_from(&o, &g)?;
    let cfg = ascetic_config(&o, dev)?;
    let mut sc = ServeConfig::new(cfg, policy);
    if o.has("no-batching") {
        sc = sc.without_batching();
    }
    if let Some(n) = o.parse::<usize>("devices")? {
        sc = sc.with_devices(n);
        let ic = match o.get("fabric").unwrap_or("pcie") {
            "pcie" => ascetic::sim::InterconnectConfig::pcie(),
            "nvlink" => ascetic::sim::InterconnectConfig::nvlink(),
            other => return Err(format!("unknown --fabric {other} (pcie|nvlink)")),
        };
        sc = sc.with_interconnect(ic);
    }
    let weighted = jobs
        .iter()
        .any(|j| j.kind.weighted())
        .then(|| weighted_variant(&g));
    let rep =
        serve_mutating(&sc, &g, weighted.as_ref(), &jobs, &mutations).map_err(|e| e.to_string())?;
    match o.get("summary").unwrap_or("text") {
        "text" => {
            println!("{}", rep.summary_text());
            println!(
                "\n{:>5} {:<5} {:>6} {:>5} {:>12} {:>12} {:>9}",
                "job", "algo", "batch", "lanes", "wait", "run", "deadline"
            );
            for j in &rep.jobs {
                println!(
                    "{:>5} {:<5} {:>6} {:>5} {:>10.2}ms {:>10.2}ms {:>9}",
                    j.id,
                    j.algo,
                    j.batch.map_or("-".to_string(), |b| b.to_string()),
                    j.lanes,
                    j.queue_wait_ns as f64 / 1e6,
                    j.run.sim_time_ns as f64 / 1e6,
                    match j.met_deadline {
                        Some(true) => "met",
                        Some(false) => "MISSED",
                        None => "-",
                    }
                );
            }
            for r in &rep.rejected {
                eprintln!("rejected job {} ({}): {}", r.id, r.algo, r.reason);
            }
        }
        "json" => println!("{}", rep.to_json()),
        other => return Err(format!("unknown --summary {other} (text|json)")),
    }
    if let Some(path) = o.get("trace-out") {
        match &rep.span_trace {
            Some(trace) => write_span_trace(trace, path)?,
            None => eprintln!("note: serve ran without span tracing"),
        }
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let sub = o.positional.first().map(|s| s.as_str());
    if sub != Some("summarize") {
        return Err("usage: ascetic trace summarize FILE.jsonl [--top K]".into());
    }
    let path = o
        .positional
        .get(1)
        .ok_or("trace summarize needs a FILE.jsonl (from --trace-out)")?;
    let top: usize = o.parse("top")?.unwrap_or(10);
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    let (trace, version) =
        ascetic::obs::Trace::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if version != ascetic::core::RUN_REPORT_SCHEMA_VERSION {
        return Err(format!(
            "{path}: trace schema version {version} does not match this binary's {}",
            ascetic::core::RUN_REPORT_SCHEMA_VERSION
        ));
    }
    let horizon = trace.horizon_ns();
    println!("trace:          {path}");
    println!("schema version: {version}");
    println!("horizon:        {:.3} ms", horizon as f64 / 1e6);
    println!("tracks:         {}", trace.tracks().len());
    println!("spans:          {}", trace.spans().len());
    println!();
    println!(
        "{:<32} {:>6} {:>12} {:>8}",
        "track", "spans", "busy", "util"
    );
    for (i, name) in trace.tracks().iter().enumerate() {
        let spans = trace.track_spans(i).count();
        let busy = trace.busy_ns(i, 0, horizon);
        println!(
            "{:<32} {:>6} {:>10.3}ms {:>7.1}%",
            name,
            spans,
            busy as f64 / 1e6,
            busy as f64 / horizon.max(1) as f64 * 100.0
        );
    }
    println!();
    println!("top {top} longest spans:");
    println!(
        "{:<28} {:<10} {:>12} {:>12} {:<24}",
        "name", "cat", "start", "duration", "track"
    );
    for s in trace.top_spans(top) {
        println!(
            "{:<28} {:<10} {:>10.3}ms {:>10.3}ms {:<24}",
            s.name,
            s.cat,
            s.start_ns as f64 / 1e6,
            s.dur_ns() as f64 / 1e6,
            trace.tracks()[s.track]
        );
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let spec = o.positional.first().ok_or("missing GRAPH")?;
    let algo: Algo = o
        .require::<String>("algo")?
        .parse()
        .map_err(|e: ascetic::algos::registry::UnknownAlgo| e.to_string())?;
    if parse_direction(&o)? == Some(DirectionMode::Pull) && !algo.pull() {
        return Err(AlgoError::PullUnsupported {
            algo: algo.display(),
        }
        .to_string());
    }
    let g = load_graph(spec)?;
    println!(
        "{:<8} {:>12} {:>9} {:>14} {:>10} {:>9}",
        "system", "time", "speedup", "transferred", "xfer/data", "GPU idle"
    );
    let mut base: Option<f64> = None;
    let mut outputs: Vec<RunReport> = Vec::new();
    for system in ["pt", "uvm", "subway", "ascetic"] {
        let rep = run_system(&o, system, &g, algo)?;
        let t = rep.seconds();
        let b = *base.get_or_insert(t);
        println!(
            "{:<8} {:>10.3}ms {:>8.2}X {:>12.2}MB {:>9.2}X {:>8.1}%",
            rep.system,
            t * 1e3,
            b / t,
            rep.total_bytes_with_prestore() as f64 / 1e6,
            rep.total_bytes_with_prestore() as f64 / g.edge_bytes() as f64,
            rep.gpu_idle_fraction() * 100.0
        );
        outputs.push(rep);
    }
    for r in &outputs[1..] {
        if r.output.first_mismatch(&outputs[0].output, 1e-6).is_some() {
            return Err(format!("{} and {} disagree!", r.system, outputs[0].system));
        }
    }
    println!("\nall systems agree on the result ✓");
    Ok(())
}
