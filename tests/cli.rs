//! End-to-end tests of the `ascetic` command-line tool: generate a graph,
//! inspect it, run algorithms under each system, and drive a session
//! pipeline — all through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ascetic"))
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ascetic-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_info_run_roundtrip() {
    let path = tmpfile("g.beg");
    let out = bin()
        .args([
            "generate",
            "--kind",
            "web",
            "--vertices",
            "20000",
            "--edges",
            "150000",
            "--seed",
            "5",
            "-o",
        ])
        .arg(&path)
        .output()
        .expect("generate runs");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin().arg("info").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vertices:     20000"), "info output:\n{text}");
    assert!(text.contains("degree histogram"));

    for system in ["ascetic", "subway", "pt", "uvm", "memory"] {
        let out = bin()
            .arg("run")
            .arg(&path)
            .args(["--algo", "bfs", "--system", system, "--mem-frac", "0.4"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "run --system {system} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_builtin_dataset_with_trace_and_csv() {
    let trace = tmpfile("trace.json");
    let csv = tmpfile("iters.csv");
    let out = bin()
        .args(["run", "fk@20000", "--algo", "pr", "--mem-frac", "0.4"])
        .arg("--trace")
        .arg(&trace)
        .arg("--iter-csv")
        .arg(&csv)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulated time"), "{text}");
    assert!(text.contains("activity/iter"), "{text}");

    let trace_json = std::fs::read_to_string(&trace).expect("trace written");
    assert!(trace_json.starts_with('[') && trace_json.trim_end().ends_with(']'));
    assert!(trace_json.contains("GPU compute engine"));

    let csv_text = std::fs::read_to_string(&csv).expect("csv written");
    assert!(csv_text.starts_with("iteration,active_vertices"));
    assert!(csv_text.lines().count() > 2);
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&csv).ok();
}

#[test]
fn metrics_out_writes_deterministic_jsonl() {
    let run = |name: &str| {
        let path = tmpfile(name);
        let out = bin()
            .args(["run", "gs@20000", "--algo", "bfs", "--mem-frac", "0.4"])
            .args(["--summary", "json"])
            .arg("--metrics-out")
            .arg(&path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let summary = String::from_utf8_lossy(&out.stdout).into_owned();
        let jsonl = std::fs::read_to_string(&path).expect("metrics written");
        std::fs::remove_file(&path).ok();
        (summary, jsonl)
    };
    let (summary, jsonl) = run("m1.jsonl");

    // The --summary json output is one parseable object embedding the snapshot.
    ascetic::obs::json::validate(summary.trim()).expect("summary json parses");
    assert!(summary.contains("\"metrics\":"), "{summary}");

    // Every JSONL line parses; the stream is meta, then events, then metrics.
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() > 2, "meta + events + metrics expected");
    for line in &lines {
        ascetic::obs::json::validate(line).unwrap_or_else(|e| panic!("bad line {e}: {line}"));
    }
    assert!(lines[0].starts_with("{\"kind\":\"meta\""), "{}", lines[0]);
    assert!(lines[1].contains("\"kind\":\"iter_start\"") || lines[1].contains("\"kind\":"));
    let last = lines[lines.len() - 1];
    assert!(last.starts_with("{\"kind\":\"metrics\""), "{last}");
    assert!(last.contains("xfer.h2d_bytes"), "{last}");

    // Bit-deterministic: a second identical invocation produces identical bytes.
    let (summary2, jsonl2) = run("m2.jsonl");
    assert_eq!(summary, summary2);
    assert_eq!(jsonl, jsonl2);
}

#[test]
fn summary_formats_render() {
    for (fmt, probe) in [("csv", "system,algorithm,"), ("md", "| metric")] {
        let out = bin()
            .args(["run", "gs@20000", "--algo", "bfs", "--mem-frac", "0.4"])
            .args(["--summary", fmt])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(probe), "--summary {fmt}:\n{text}");
    }
    let out = bin()
        .args(["run", "gs@20000", "--algo", "bfs", "--summary", "xml"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown summary format must fail");
}

#[test]
fn trace_out_roundtrips_through_summarize() {
    let jsonl = tmpfile("spans.jsonl");
    let json = tmpfile("spans.json");
    for path in [&jsonl, &json] {
        let out = bin()
            .args(["run", "gs@20000", "--algo", "bfs", "--mem-frac", "0.4"])
            .arg("--trace-out")
            .arg(path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // The .json flavour is the Chrome/Perfetto array.
    let perfetto = std::fs::read_to_string(&json).expect("perfetto trace written");
    assert!(perfetto.starts_with('[') && perfetto.trim_end().ends_with(']'));
    assert!(perfetto.contains("GPU compute engine"), "{perfetto}");
    assert!(perfetto.contains("\"schema_version\":3"), "{perfetto}");

    // The .jsonl flavour round-trips through the parser and the
    // summarize subcommand.
    let text = std::fs::read_to_string(&jsonl).expect("jsonl trace written");
    let (trace, ver) = ascetic::obs::Trace::from_jsonl(&text).expect("jsonl parses");
    assert_eq!(ver, ascetic::core::RUN_REPORT_SCHEMA_VERSION);
    assert!(!trace.spans().is_empty());

    let out = bin()
        .args(["trace", "summarize"])
        .arg(&jsonl)
        .args(["--top", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout);
    assert!(summary.contains("schema version: 3"), "{summary}");
    assert!(summary.contains("GPU compute engine"), "{summary}");
    assert!(summary.contains("PCIe copy stream"), "{summary}");
    assert!(summary.contains("top 5 longest spans"), "{summary}");

    // summarize refuses the Perfetto flavour (it reads the compact form)
    let out = bin()
        .args(["trace", "summarize"])
        .arg(&json)
        .output()
        .unwrap();
    assert!(!out.status.success(), "perfetto json is not summarizable");

    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&json).ok();
}

#[test]
fn serve_reports_latency_and_writes_trace() {
    let trace = tmpfile("serve-spans.json");
    let out = bin()
        .args(["serve", "gs@20000", "--synthetic", "4", "--mem-frac", "0.4"])
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("latency p50/p90/p99 ns:"), "{text}");
    let json = std::fs::read_to_string(&trace).expect("serve trace written");
    assert!(json.contains("scheduler"), "{json}");
    assert!(json.contains("job 0"), "{json}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn pipeline_amortizes() {
    let out = bin()
        .args([
            "pipeline",
            "fk@20000",
            "--algos",
            "bfs,cc,pr",
            "--mem-frac",
            "0.4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("3 runs over one prestored static region"),
        "{text}"
    );
}

#[test]
fn compare_agrees() {
    let out = bin()
        .args(["compare", "gs@20000", "--algo", "cc", "--mem-frac", "0.4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("all systems agree"), "{text}");
}

#[test]
fn run_with_mutations_repairs_and_verifies() {
    let muts = tmpfile("muts.jsonl");
    std::fs::write(
        &muts,
        r#"{"op": "insert", "src": 1, "dst": 90, "batch": 0}
{"op": "insert", "src": 90, "dst": 7, "batch": 0}
{"op": "delete", "src": 1, "dst": 90, "batch": 1}
"#,
    )
    .unwrap();
    let out = bin()
        .args(["run", "gs@20000", "--algo", "bfs", "--mem-frac", "0.4"])
        .arg("--mutations")
        .arg(&muts)
        .arg("--verify")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("streaming mutations"), "{text}");
    assert!(
        text.contains("every repaired output matches its cold recompute"),
        "{text}"
    );
    // two batches, both shown with a verify verdict
    assert_eq!(text.matches(" ok").count(), 2, "{text}");
    std::fs::remove_file(&muts).ok();
}

#[test]
fn malformed_mutations_fail_with_the_line_number() {
    let muts = tmpfile("bad-muts.jsonl");
    std::fs::write(
        &muts,
        "{\"op\": \"insert\", \"src\": 1, \"dst\": 2}\n{\"op\": \"sever\", \"src\": 3, \"dst\": 4}\n",
    )
    .unwrap();
    let out = bin()
        .args(["run", "gs@20000", "--algo", "bfs", "--mem-frac", "0.4"])
        .arg("--mutations")
        .arg(&muts)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mutation line 2"), "{err}");
    assert!(err.contains("unknown op \"sever\""), "{err}");
    std::fs::remove_file(&muts).ok();
}

#[test]
fn serve_applies_trace_mutations_to_live_sessions() {
    let trace = tmpfile("mutating-trace.jsonl");
    std::fs::write(
        &trace,
        r#"{"id": 0, "algo": "bfs", "source": 3, "submit_ns": 0}
{"mutate": "insert", "src": 3, "dst": 41, "at": 1}
{"id": 1, "algo": "bfs", "source": 3, "submit_ns": 2}
"#,
    )
    .unwrap();
    let out = bin()
        .args(["serve", "gs@20000", "--mem-frac", "0.4", "--no-batching"])
        .arg("--trace")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 mutation batches"), "{text}");
    std::fs::remove_file(&trace).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = bin().args(["run", "fk@1000"]).output().unwrap(); // missing --algo
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --algo"));

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["run", "nosuchfile.beg", "--algo", "bfs"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
