//! Property-based tests across crate boundaries: random graphs, random
//! memory budgets, random chunk sizes — the out-of-core result must always
//! equal the in-memory oracle, and the structural invariants must hold.

use proptest::prelude::*;

use ascetic::algos::inmemory::run_in_memory;
use ascetic::algos::{Bfs, Cc, PageRank};
use ascetic::baselines::SubwaySystem;
use ascetic::core::ondemand::{gather, plan_batches};
use ascetic::core::ratio::{satisfies_eq1, static_share};
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic::graph::partition::{partition_by_bytes, validate_partitions};
use ascetic::graph::{Csr, GraphBuilder};
use ascetic::sim::DeviceConfig;

/// Build an arbitrary graph from a proptest edge list.
fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Csr {
    let mut b = GraphBuilder::new(n)
        .drop_self_loops(true)
        .sort_neighbors(true);
    for &(u, v) in edges {
        b.add_edge(u % n as u32, v % n as u32);
    }
    b.build()
}

fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        16usize..200,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 1..2000),
    )
        .prop_map(|(n, edges)| graph_from_edges(n, &edges))
}

/// Like [`graph_from_edges`] but keeping self-loops, and with every edge
/// squeezed into the bottom half of the vertex range so the top half is
/// guaranteed isolated — the structural quirks (self-loops, isolated
/// vertices, disconnected components) the pull operators must survive.
fn quirky_graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Csr {
    let mut b = GraphBuilder::new(n).sort_neighbors(true);
    let span = (n as u32 / 2).max(1);
    for &(u, v) in edges {
        b.add_edge(u % span, v % span);
    }
    b.build()
}

fn arb_quirky_graph() -> impl Strategy<Value = Csr> {
    (
        16usize..200,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 1..2000),
    )
        .prop_map(|(n, edges)| quirky_graph_from_edges(n, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ascetic_always_matches_oracle_bfs(g in arb_graph(), mem_frac in 1u64..20, chunk in 16usize..256) {
        let chunk = chunk.next_multiple_of(8);
        // edge budget must hold at least two chunks (engine precondition)
        let edge_budget = (g.edge_bytes() * mem_frac / 20).max(2 * chunk as u64 + 8);
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + edge_budget);
        let cfg = AsceticConfig::new(dev).with_chunk_bytes(chunk);
        let asc = AsceticSystem::new(cfg).run(&g, &Bfs::new(0));
        let oracle = run_in_memory(&g, &Bfs::new(0));
        prop_assert_eq!(asc.output, oracle.output);
    }

    #[test]
    fn ascetic_always_matches_oracle_cc(g in arb_graph(), ratio in 0.0f64..=1.0) {
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2 + 256);
        let cfg = AsceticConfig::new(dev).with_chunk_bytes(64).with_static_ratio(ratio);
        let asc = AsceticSystem::new(cfg).run(&g, &Cc::new());
        let oracle = run_in_memory(&g, &Cc::new());
        prop_assert_eq!(asc.output, oracle.output);
    }

    #[test]
    fn ascetic_matches_oracle_under_random_configs(
        g in arb_graph(),
        fill_pick in 0u8..4,
        repl_pick in 0u8..3,
        overlap in any::<bool>(),
        adaptive in any::<bool>(),
        od_buffers in 1usize..4,
        weighted in any::<bool>(),
    ) {
        use ascetic::core::{FillPolicy, ReplacementPolicy};
        use ascetic::algos::Sssp;
        use ascetic::graph::datasets::weighted_variant;
        let g = if weighted { weighted_variant(&g) } else { g };
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2 + 512);
        let fill = match fill_pick {
            0 => FillPolicy::Front,
            1 => FillPolicy::Rear,
            2 => FillPolicy::Random { seed: 7 },
            _ => FillPolicy::Lazy,
        };
        let repl = match repl_pick {
            0 => ReplacementPolicy::Disabled,
            1 => ReplacementPolicy::LastIteration,
            _ => ReplacementPolicy::Cumulative { stale_threshold: 2 },
        };
        let cfg = AsceticConfig::new(dev)
            .with_chunk_bytes(64)
            .with_fill(fill)
            .with_replacement(repl)
            .with_overlap(overlap)
            .with_adaptive(adaptive)
            .with_od_buffers(od_buffers);
        if weighted {
            let asc = AsceticSystem::new(cfg).run(&g, &Sssp::new(0));
            let oracle = run_in_memory(&g, &Sssp::new(0));
            prop_assert_eq!(asc.output, oracle.output);
        } else {
            let asc = AsceticSystem::new(cfg).run(&g, &PageRank::new());
            let oracle = run_in_memory(&g, &PageRank::new());
            prop_assert_eq!(asc.output, oracle.output);
        }
    }

    #[test]
    fn pull_and_adaptive_always_match_push(
        g in arb_quirky_graph(),
        forced in any::<bool>(),
        chunk in 16usize..256,
    ) {
        use ascetic::core::DirectionMode;
        let chunk = chunk.next_multiple_of(8);
        // edge budget must hold at least two chunks (engine precondition)
        let edge_budget = (g.edge_bytes() / 2).max(2 * chunk as u64 + 8);
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + edge_budget);
        let mode = if forced { DirectionMode::Pull } else { DirectionMode::Adaptive };
        let cfg = |m: DirectionMode| AsceticConfig::new(dev).with_chunk_bytes(chunk).with_direction(m);

        let push = AsceticSystem::new(cfg(DirectionMode::Push)).run(&g, &Bfs::new(0));
        let other = AsceticSystem::new(cfg(mode)).run(&g, &Bfs::new(0));
        prop_assert_eq!(&push.output, &run_in_memory(&g, &Bfs::new(0)).output);
        prop_assert_eq!(push.output, other.output);

        let push = AsceticSystem::new(cfg(DirectionMode::Push)).run(&g, &Cc::new());
        let other = AsceticSystem::new(cfg(mode)).run(&g, &Cc::new());
        prop_assert_eq!(&push.output, &run_in_memory(&g, &Cc::new()).output);
        prop_assert_eq!(push.output, other.output);

        let push = AsceticSystem::new(cfg(DirectionMode::Push)).run(&g, &PageRank::new());
        let other = AsceticSystem::new(cfg(mode)).run(&g, &PageRank::new());
        prop_assert_eq!(&push.output, &run_in_memory(&g, &PageRank::new()).output);
        prop_assert_eq!(push.output, other.output);
    }

    #[test]
    fn subway_always_matches_oracle_pr(g in arb_graph()) {
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 3 + 256);
        let sw = SubwaySystem::new(dev).run(&g, &PageRank::new());
        let oracle = run_in_memory(&g, &PageRank::new());
        prop_assert_eq!(sw.output, oracle.output);
    }

    #[test]
    fn partitions_always_tile(g in arb_graph(), budget in 8u64..4096) {
        let budget = budget.max(g.bytes_per_edge() as u64);
        let parts = partition_by_bytes(&g, budget);
        prop_assert!(validate_partitions(&g, &parts).is_ok());
    }

    #[test]
    fn batches_cover_all_requested_edges(g in arb_graph(), cap in 4usize..512) {
        let nodes: Vec<u32> = (0..g.num_vertices() as u32).step_by(2).collect();
        let batches = plan_batches(&g, &nodes, cap.max(g.words_per_edge()));
        // every requested vertex's edges appear exactly once, in order
        let mut covered: std::collections::HashMap<u32, u64> = Default::default();
        for b in &batches {
            for e in b {
                *covered.entry(e.vertex).or_insert(0) += e.num_edges();
            }
        }
        for &v in &nodes {
            prop_assert_eq!(covered.get(&v).copied().unwrap_or(0), g.degree(v), "vertex {}", v);
        }
        // gather materializes exactly the bytes the entries describe
        for entries in batches {
            let total: u64 = entries.iter().map(|e| e.num_edges()).sum();
            let batch = gather(&g, entries);
            prop_assert_eq!(batch.edges, total);
            prop_assert_eq!(batch.words.len() as u64, total * g.words_per_edge() as u64);
        }
    }

    #[test]
    fn eq2_share_always_satisfies_eq1(k in 0.01f64..0.5, d in 1u64..1_000_000, m in 1u64..1_000_000) {
        let r = static_share(k, d, m);
        prop_assert!((0.0..=1.0).contains(&r));
        let m_static = (r * m as f64) as u64;
        // Eq (1) must hold at the chosen point (within 1-byte rounding)
        // whenever it is satisfiable at all (K·D ≤ M; otherwise even
        // M_static = 0 cannot fit the per-iteration spill and the engine
        // falls back to fragmented on-demand batches).
        if d > m && k * d as f64 <= m as f64 {
            prop_assert!(satisfies_eq1(k, d, m, m_static.saturating_sub(1)));
        }
    }
}
