//! Reproducibility guarantees: simulated results must be bit-identical
//! across repeated runs and across host thread counts (the virtual clock
//! and the fixed-point/monotone algorithms make this possible).

use ascetic::algos::{Bfs, Cc, PageRank, Sssp};
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem, RunReport};
use ascetic::graph::datasets::{Dataset, DatasetId};
use ascetic::par::set_num_threads;
use ascetic::sim::DeviceConfig;

const SCALE: u64 = 30_000;

fn run_fk<P: ascetic::algos::VertexProgram>(prog: &P, weighted: bool) -> RunReport {
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = if weighted {
        ds.weighted()
    } else {
        ds.graph.clone()
    };
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(1024)).run(&g, prog)
}

fn assert_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.output, b.output, "outputs differ");
    assert_eq!(a.iterations, b.iterations, "iteration counts differ");
    assert_eq!(a.sim_time_ns, b.sim_time_ns, "simulated times differ");
    assert_eq!(a.xfer, b.xfer, "transfer stats differ");
    assert_eq!(a.kernels, b.kernels, "kernel stats differ");
    assert_eq!(a.prestore_bytes, b.prestore_bytes);
    assert_eq!(a.refresh_bytes, b.refresh_bytes);
}

#[test]
fn repeated_runs_are_bit_identical() {
    let a = run_fk(&PageRank::new(), false);
    let b = run_fk(&PageRank::new(), false);
    assert_identical(&a, &b);
}

#[test]
fn thread_count_does_not_change_results() {
    // Simulated time comes from the cost model, not the wall clock; the
    // algorithms are monotone/fixed-point — so 1 host thread and many host
    // threads must agree exactly.
    set_num_threads(1);
    let serial_bfs = run_fk(&Bfs::new(0), false);
    let serial_pr = run_fk(&PageRank::new(), false);
    let serial_cc = run_fk(&Cc::new(), false);
    let serial_sssp = run_fk(&Sssp::new(0), true);
    set_num_threads(8);
    let par_bfs = run_fk(&Bfs::new(0), false);
    let par_pr = run_fk(&PageRank::new(), false);
    let par_cc = run_fk(&Cc::new(), false);
    let par_sssp = run_fk(&Sssp::new(0), true);
    set_num_threads(0);
    assert_identical(&serial_bfs, &par_bfs);
    assert_identical(&serial_pr, &par_pr);
    assert_identical(&serial_cc, &par_cc);
    assert_identical(&serial_sssp, &par_sssp);
}

/// Satellite of the persistent-pool PR: the pool swap must not perturb a
/// single bit of any system's results at any host thread count — including
/// the full metrics snapshot, not just the output vector.
#[test]
fn thread_sweep_is_bit_identical_for_all_systems_on_rmat() {
    use ascetic::baselines::{PtSystem, SubwaySystem, UvmSystem};
    use ascetic::graph::generators::{rmat_graph, RmatConfig};
    use ascetic::graph::Csr;

    let g = rmat_graph(&RmatConfig::new(11, 80_000, 42));
    // Undersized device so every system actually exercises its
    // out-of-core machinery (gather, staging, eviction) on the pool.
    let dev = |g: &Csr| DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    assert!(
        dev(&g).mem_bytes < g.edge_bytes(),
        "graph must oversubscribe"
    );
    let src = (0..g.num_vertices() as u32)
        .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v)))
        .unwrap();

    let run_suite = |threads: usize| -> Vec<RunReport> {
        set_num_threads(threads);
        let asc = AsceticSystem::new(AsceticConfig::new(dev(&g)).with_chunk_bytes(1024));
        let sw = SubwaySystem::new(dev(&g));
        let pt = PtSystem::new(dev(&g));
        let uv = UvmSystem::new(dev(&g));
        vec![
            asc.run(&g, &PageRank::new()),
            asc.run(&g, &Bfs::new(src)),
            sw.run(&g, &PageRank::new()),
            sw.run(&g, &Bfs::new(src)),
            pt.run(&g, &PageRank::new()),
            pt.run(&g, &Bfs::new(src)),
            uv.run(&g, &PageRank::new()),
            uv.run(&g, &Bfs::new(src)),
        ]
    };

    let base = run_suite(1);
    for threads in [2, 8] {
        let sweep = run_suite(threads);
        for (a, b) in base.iter().zip(&sweep) {
            assert_identical(a, b);
            assert_eq!(
                a.metrics, b.metrics,
                "{}/{} metrics must not depend on host threads ({} vs 1)",
                a.system, a.algorithm, threads
            );
        }
    }
    set_num_threads(0);
}

/// Satellite of the compressed-transfer PR: the delta–varint encode runs
/// on the worker pool (parallel length pre-pass + disjoint encode
/// windows), and the adaptive crossover reads engine frontiers — neither
/// may let the host thread count leak into a single bit of the report,
/// under any `CompressionMode`.
#[test]
fn compression_modes_are_bit_identical_across_thread_counts() {
    use ascetic::baselines::SubwaySystem;
    use ascetic::core::CompressionMode;
    use ascetic::graph::generators::{rmat_graph, RmatConfig};

    let g = rmat_graph(&RmatConfig::new(11, 80_000, 42));
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    let modes = [
        CompressionMode::Off,
        CompressionMode::Always,
        CompressionMode::Adaptive,
    ];

    let run_suite = |threads: usize| -> Vec<RunReport> {
        set_num_threads(threads);
        modes
            .iter()
            .flat_map(|&mode| {
                let asc = AsceticSystem::new(
                    AsceticConfig::new(dev)
                        .with_chunk_bytes(1024)
                        .with_compression(mode),
                );
                let sw = SubwaySystem::new(dev).with_compression(mode);
                [
                    asc.run(&g, &PageRank::new()),
                    asc.run(&g, &Bfs::new(0)),
                    sw.run(&g, &PageRank::new()),
                ]
            })
            .collect()
    };

    let base = run_suite(1);
    for threads in [2, 8] {
        let sweep = run_suite(threads);
        for (a, b) in base.iter().zip(&sweep) {
            assert_identical(a, b);
            assert_eq!(a.prestore_wire_bytes, b.prestore_wire_bytes);
            assert_eq!(a.refresh_wire_bytes, b.refresh_wire_bytes);
            assert_eq!(
                a.metrics, b.metrics,
                "{}/{} metrics must not depend on host threads ({} vs 1)",
                a.system, a.algorithm, threads
            );
        }
    }
    set_num_threads(0);
}

/// Satellite of the prefetch-pipeline PR: the cross-iteration prefetch
/// planner runs on the single orchestration thread over deterministic
/// inputs (frontier bitmap, hotness table, cached encode sizes), and the
/// second copy stream arbitrates the link in issue order — so every
/// prefetch mode, combined with every compression mode, must be
/// bit-identical at every host thread count, including the speculative
/// byte accounting.
#[test]
fn prefetch_modes_are_bit_identical_across_thread_counts() {
    use ascetic::core::{CompressionMode, PrefetchMode};
    use ascetic::graph::generators::{rmat_graph, RmatConfig};

    let g = rmat_graph(&RmatConfig::new(11, 80_000, 42));
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    let prefetch_modes = [
        PrefetchMode::Off,
        PrefetchMode::NextFrontier,
        PrefetchMode::Hotness,
    ];
    let compression_modes = [CompressionMode::Off, CompressionMode::Adaptive];

    let run_suite = |threads: usize| -> Vec<RunReport> {
        set_num_threads(threads);
        let mut reports = Vec::new();
        for &pf in &prefetch_modes {
            for &cm in &compression_modes {
                let asc = AsceticSystem::new(
                    AsceticConfig::new(dev)
                        .with_chunk_bytes(1024)
                        .with_compression(cm)
                        .with_prefetch(pf),
                );
                reports.push(asc.run(&g, &Bfs::new(0)));
                reports.push(asc.run(&g, &PageRank::new()));
            }
        }
        reports
    };

    let base = run_suite(1);
    for threads in [2, 8] {
        let sweep = run_suite(threads);
        for (a, b) in base.iter().zip(&sweep) {
            assert_identical(a, b);
            assert_eq!(a.prefetch_bytes, b.prefetch_bytes);
            assert_eq!(a.prefetch_ops, b.prefetch_ops);
            assert_eq!(a.prefetch_hits, b.prefetch_hits);
            assert_eq!(a.prefetch_wasted_bytes, b.prefetch_wasted_bytes);
            assert_eq!(
                a.metrics, b.metrics,
                "{}/{} metrics must not depend on host threads ({} vs 1)",
                a.system, a.algorithm, threads
            );
        }
    }
    set_num_threads(0);
}

/// Prefetch is a pure timing optimization: whatever it speculates, the
/// algorithm answer must equal the `--prefetch off` answer exactly.
#[test]
fn prefetch_never_changes_algorithm_results() {
    use ascetic::core::PrefetchMode;

    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = ds.graph.clone();
    let wg = ds.weighted();
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    let cfg = |pf: PrefetchMode| {
        AsceticSystem::new(
            AsceticConfig::new(dev)
                .with_chunk_bytes(1024)
                .with_prefetch(pf),
        )
    };
    let off = cfg(PrefetchMode::Off);
    for pf in [PrefetchMode::NextFrontier, PrefetchMode::Hotness] {
        let on = cfg(pf);
        assert_eq!(
            off.run(&g, &Bfs::new(0)).output,
            on.run(&g, &Bfs::new(0)).output
        );
        assert_eq!(
            off.run(&g, &PageRank::new()).output,
            on.run(&g, &PageRank::new()).output
        );
        assert_eq!(
            off.run(&g, &Cc::new()).output,
            on.run(&g, &Cc::new()).output
        );
        assert_eq!(
            off.run(&wg, &Sssp::new(0)).output,
            on.run(&wg, &Sssp::new(0)).output
        );
    }
}

/// Satellite of the span-tracer PR: all span emission happens on the
/// single orchestration thread at virtual-clock timestamps, so the
/// exported `trace.json` must be byte-identical across host thread
/// counts — for one run of every system.
#[test]
fn span_traces_are_byte_identical_across_thread_counts() {
    use ascetic::baselines::{PtSystem, SubwaySystem, UvmSystem};
    use ascetic::core::RUN_REPORT_SCHEMA_VERSION;
    use ascetic::graph::generators::{rmat_graph, RmatConfig};

    let g = rmat_graph(&RmatConfig::new(11, 80_000, 42));
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);

    let run_suite = |threads: usize| -> Vec<String> {
        set_num_threads(threads);
        let asc = AsceticSystem::new(
            AsceticConfig::new(dev)
                .with_chunk_bytes(1024)
                .with_tracing(true),
        );
        let sw = SubwaySystem::new(dev).with_tracing(true);
        let pt = PtSystem::new(dev).with_tracing(true);
        let uv = UvmSystem::new(dev).with_tracing(true);
        [
            asc.run(&g, &Bfs::new(0)),
            sw.run(&g, &Bfs::new(0)),
            pt.run(&g, &Bfs::new(0)),
            uv.run(&g, &Bfs::new(0)),
        ]
        .iter()
        .map(|r| {
            let trace = r
                .span_trace
                .as_ref()
                .unwrap_or_else(|| panic!("{} ran with tracing", r.system));
            assert!(!trace.spans().is_empty(), "{} trace is empty", r.system);
            format!(
                "{}\n{}",
                trace.to_perfetto_json(RUN_REPORT_SCHEMA_VERSION),
                trace.to_jsonl(RUN_REPORT_SCHEMA_VERSION)
            )
        })
        .collect()
    };

    let base = run_suite(1);
    for threads in [2, 8] {
        let sweep = run_suite(threads);
        assert_eq!(
            base, sweep,
            "trace bytes must not depend on host threads ({threads} vs 1)"
        );
    }
    set_num_threads(0);
}

/// Tentpole of the fleet PR: sharded multi-device execution is a pure
/// timing model. Every algorithm's answer must be byte-identical across
/// fleet sizes {1, 2, 4}, and the whole fleet report — answer, makespan,
/// exchange volume, per-device reports, and the merged per-device span
/// trace — must be byte-identical across host thread counts {1, 8}.
#[test]
fn fleet_runs_are_bit_identical_across_devices_and_threads() {
    use ascetic::core::{run_fleet, FleetConfig, FleetRunReport, RUN_REPORT_SCHEMA_VERSION};

    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = ds.graph.clone();
    let wg = ds.weighted();
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    let cfg = AsceticConfig::new(dev)
        .with_chunk_bytes(1024)
        .with_tracing(true);

    let run_suite = |threads: usize| -> Vec<FleetRunReport> {
        set_num_threads(threads);
        let mut reports = Vec::new();
        for devices in [1usize, 2, 4] {
            let fc = FleetConfig::nvlink(devices);
            reports.push(run_fleet(cfg, fc, &g, &Bfs::new(0)));
            reports.push(run_fleet(cfg, fc, &g, &Cc::new()));
            reports.push(run_fleet(cfg, fc, &g, &PageRank::new()));
            reports.push(run_fleet(cfg, fc, &wg, &Sssp::new(0)));
        }
        reports
    };

    let base = run_suite(1);
    // sharding may not change any answer: every device count agrees with
    // the single-device run, algorithm by algorithm
    for chunk in base.chunks(4).skip(1) {
        for (single, fleet) in base[..4].iter().zip(chunk) {
            assert_eq!(
                single.output, fleet.output,
                "{} devices changed an answer",
                fleet.devices
            );
        }
    }
    let trace_bytes = |r: &FleetRunReport| -> String {
        let t = r.span_trace.as_ref().expect("fleet ran with tracing");
        assert!(!t.spans().is_empty());
        format!(
            "{}\n{}",
            t.to_perfetto_json(RUN_REPORT_SCHEMA_VERSION),
            t.to_jsonl(RUN_REPORT_SCHEMA_VERSION)
        )
    };
    let sweep = run_suite(8);
    for (a, b) in base.iter().zip(&sweep) {
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.output, b.output, "outputs depend on host threads");
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(
            a.makespan_ns, b.makespan_ns,
            "makespan depends on host threads"
        );
        assert_eq!(a.exchange_bytes, b.exchange_bytes);
        for (ad, bd) in a.per_device.iter().zip(&b.per_device) {
            assert_identical(ad, bd);
        }
        assert_eq!(
            trace_bytes(a),
            trace_bytes(b),
            "fleet trace bytes must not depend on host threads ({} devices)",
            a.devices
        );
    }
    set_num_threads(0);
}

/// Tentpole of the direction PR: pull/adaptive traversal is a pure
/// data-movement decision. Outputs must be byte-identical across
/// {push, pull, adaptive} × {1, 2, 8} host threads on one device, and
/// across {1, 2, 4} devices under adaptive — the direction heuristic is
/// evaluated on the orchestration thread from deterministic inputs, so
/// the whole report (times, transfer stats, metrics) pins too.
#[test]
fn direction_modes_are_bit_identical_across_threads_and_devices() {
    use ascetic::core::{run_fleet, DirectionMode, FleetConfig, FleetRunReport};

    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = ds.graph.clone();
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    let cfg = |m: DirectionMode| {
        AsceticConfig::new(dev)
            .with_chunk_bytes(1024)
            .with_direction(m)
    };
    let modes = [
        DirectionMode::Push,
        DirectionMode::Pull,
        DirectionMode::Adaptive,
    ];

    let run_suite = |threads: usize| -> Vec<RunReport> {
        set_num_threads(threads);
        let mut reports = Vec::new();
        for m in modes {
            let asc = AsceticSystem::new(cfg(m));
            reports.push(asc.run(&g, &Bfs::new(0)));
            reports.push(asc.run(&g, &Cc::new()));
            reports.push(asc.run(&g, &PageRank::new()));
        }
        reports
    };
    let base = run_suite(1);
    // direction never changes an answer: pull and adaptive agree with push
    for chunk in base.chunks(3).skip(1) {
        for (push, other) in base[..3].iter().zip(chunk) {
            assert_eq!(
                push.output, other.output,
                "direction changed the {} answer",
                other.algorithm
            );
        }
    }
    for threads in [2, 8] {
        let sweep = run_suite(threads);
        for (a, b) in base.iter().zip(&sweep) {
            assert_identical(a, b);
            assert_eq!(
                a.metrics, b.metrics,
                "{}/{} metrics must not depend on host threads ({} vs 1)",
                a.system, a.algorithm, threads
            );
        }
    }

    // adaptive across fleet sizes: every device count answers like push
    let fleet_suite = |threads: usize| -> Vec<FleetRunReport> {
        set_num_threads(threads);
        [1usize, 2, 4]
            .iter()
            .map(|&d| {
                run_fleet(
                    cfg(DirectionMode::Adaptive),
                    FleetConfig::nvlink(d),
                    &g,
                    &Bfs::new(0),
                )
            })
            .collect()
    };
    let fleet_base = fleet_suite(1);
    for r in &fleet_base {
        assert_eq!(
            r.output, base[0].output,
            "{} devices under adaptive changed the BFS answer",
            r.devices
        );
    }
    for (a, b) in fleet_base.iter().zip(&fleet_suite(8)) {
        assert_eq!(a.output, b.output, "fleet outputs depend on host threads");
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.exchange_bytes, b.exchange_bytes);
    }
    set_num_threads(0);
}

/// Pinned: on the standard bench graph the adaptive policy must actually
/// take the pull path on the dense mid-phase — at least one pull
/// iteration, strictly fewer steady-state wire bytes than push-only, and
/// the exact push answer.
#[test]
fn adaptive_switches_on_the_dense_mid_phase_of_the_bench_graph() {
    use ascetic::core::DirectionMode;

    let g = Dataset::build(DatasetId::Fk, SCALE).graph.clone();
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    let run = |m: DirectionMode| {
        AsceticSystem::new(
            AsceticConfig::new(dev)
                .with_chunk_bytes(1024)
                .with_direction(m),
        )
        .run(&g, &Bfs::new(0))
    };
    let push = run(DirectionMode::Push);
    let adaptive = run(DirectionMode::Adaptive);
    assert_eq!(push.output, adaptive.output, "adaptive changed the answer");
    assert!(
        push.per_iter.iter().all(|i| !i.pull),
        "push-only run reported pull iterations"
    );
    let pulls = adaptive.per_iter.iter().filter(|i| i.pull).count();
    assert!(pulls >= 1, "adaptive never switched to pull on fk@{SCALE}");
    assert!(
        adaptive.steady_wire_bytes() < push.steady_wire_bytes(),
        "adaptive must strictly reduce wire bytes ({} vs {})",
        adaptive.steady_wire_bytes(),
        push.steady_wire_bytes()
    );
}

#[test]
fn dataset_builds_are_reproducible() {
    let a = Dataset::build(DatasetId::Gs, SCALE);
    let b = Dataset::build(DatasetId::Gs, SCALE);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.weighted(), b.weighted());
}
