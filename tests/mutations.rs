//! Streaming-mutation guarantees, across crate boundaries.
//!
//! Two families of checks:
//!
//! * **Structural** (proptests): random insert/delete churn over quirky
//!   graphs — self-loops, isolated vertices, parallel edges, batches that
//!   straddle chunk boundaries — must leave the patched store byte-equal
//!   to a CSR/CSC rebuilt from scratch, and `Csr::validate()` must hold
//!   after every patch.
//! * **Oracle + determinism**: the incrementally repaired answer after
//!   every batch is bit-identical to a cold recompute on the mutated
//!   graph, and the whole stream is reproducible across {1, 2, 8} host
//!   threads and {1, 2} fleet devices.

use proptest::prelude::*;

use ascetic::algos::{Algo, ProgramOpts};
use ascetic::core::{run_fleet, AsceticConfig, FleetConfig, RepairMode};
use ascetic::graph::datasets::{Dataset, DatasetId};
use ascetic::graph::{Csr, GraphBuilder, Mutation, PatchableCsr, VertexId, Weight};
use ascetic::mutate::{materialize, run_with_mutations, synthetic_churn};
use ascetic::par::set_num_threads;
use ascetic::sim::DeviceConfig;

fn small_cfg(g: &Csr) -> AsceticConfig {
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * 2 / 5);
    AsceticConfig::new(dev).with_chunk_bytes(1024)
}

/// Quirky proptest graphs are tiny (dozens of vertices, hundreds of
/// edges); give the arena room for the vertex slab plus a handful of
/// small chunks so the session's minimum edge budget holds.
fn tiny_cfg(g: &Csr) -> AsceticConfig {
    let dev = DeviceConfig::p100(g.num_vertices() as u64 * 64 + g.edge_bytes() + 4096);
    AsceticConfig::new(dev).with_chunk_bytes(256)
}

/// Self-loops kept, every edge squeezed into the bottom half of the
/// vertex range so the top half is guaranteed isolated.
fn quirky_graph_from_edges(n: usize, edges: &[(u32, u32)], weighted: bool) -> Csr {
    let mut b = GraphBuilder::new(n).dedup(false);
    let span = (n as u32 / 2).max(1);
    for (i, &(u, v)) in edges.iter().enumerate() {
        if weighted {
            b.add_weighted_edge(u % span, v % span, (i as Weight % 9) + 1);
        } else {
            b.add_edge(u % span, v % span);
        }
    }
    b.build()
}

/// Raw mutation ops as the proptest strategy draws them; resolved against
/// a concrete graph by [`resolve_batches`].
type RawBatches = Vec<Vec<(u32, u32, bool, u32)>>;

fn arb_raw_batches() -> impl Strategy<Value = RawBatches> {
    proptest::collection::vec(
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>(), 1u32..10), 1..60),
        1..4,
    )
}

/// Random mutation stream: inserts anywhere in the range (so patched rows
/// grow past their chunk's slack and force splits), deletes aimed at the
/// bottom half where the edges live (so they hit real edges often but not
/// always — `missing_deletes` must be a counted no-op, not a failure).
fn resolve_batches(raw: &RawBatches, n: usize, weighted: bool) -> Vec<Vec<Mutation>> {
    let span = (n as u32 / 2).max(1);
    raw.iter()
        .map(|ops| {
            ops.iter()
                .map(|&(u, v, del, w)| {
                    if del {
                        Mutation::Delete {
                            src: u % span,
                            dst: v % span,
                        }
                    } else {
                        Mutation::Insert {
                            src: u % n as u32,
                            dst: v % n as u32,
                            weight: weighted.then_some(w),
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Rebuild-from-scratch oracle: the canonical semantics applied to a
/// plain edge list (inserts append at row end, deletes remove every
/// parallel copy).
fn oracle_apply(g: &Csr, batches: &[Vec<Mutation>]) -> Csr {
    let n = g.num_vertices();
    let mut rows: Vec<Vec<(VertexId, Option<Weight>)>> = (0..n)
        .map(|v| {
            let ts = g.neighbors(v as VertexId);
            match g.weights() {
                Some(_) => ts
                    .iter()
                    .zip(g.edge_weights(v as VertexId))
                    .map(|(&t, &w)| (t, Some(w)))
                    .collect(),
                None => ts.iter().map(|&t| (t, None)).collect(),
            }
        })
        .collect();
    for batch in batches {
        for op in batch {
            match *op {
                Mutation::Insert { src, dst, weight } => rows[src as usize].push((dst, weight)),
                Mutation::Delete { src, dst } => rows[src as usize].retain(|&(t, _)| t != dst),
            }
        }
    }
    let mut offsets = vec![0u64];
    let mut targets = Vec::new();
    let mut weights = g.weights().map(|_| Vec::new());
    for row in &rows {
        for &(t, w) in row {
            targets.push(t);
            if let Some(ws) = weights.as_mut() {
                ws.push(w.unwrap());
            }
        }
        offsets.push(targets.len() as u64);
    }
    Csr::from_parts(offsets, targets, weights)
}

fn assert_csr_eq(a: &Csr, b: &Csr, what: &str) {
    assert_eq!(a.offsets(), b.offsets(), "{what}: offsets differ");
    assert_eq!(a.targets(), b.targets(), "{what}: targets differ");
    assert_eq!(a.weights(), b.weights(), "{what}: weights differ");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Patched == rebuilt from scratch, CSR and CSC mirror alike, with
    /// `validate()` after every batch — tiny chunks so batches straddle
    /// chunk boundaries and overflow the per-chunk slack constantly.
    #[test]
    fn patched_store_matches_a_rebuild_from_scratch(
        (n, edges, weighted) in (16usize..120, proptest::collection::vec((any::<u32>(), any::<u32>()), 1..600), any::<bool>()),
        raw in arb_raw_batches(),
    ) {
        let g = quirky_graph_from_edges(n, &edges, weighted);
        let batches = resolve_batches(&raw, n, weighted);
        let mut store = PatchableCsr::with_mirror(&g, 8, 2);
        let mut applied: Vec<Vec<Mutation>> = Vec::new();
        for batch in &batches {
            store.apply(batch).expect("well-formed batches always apply");
            applied.push(batch.clone());
            let csr = store.to_csr();
            csr.validate().expect("patched CSR invariants");
            let csc = store.to_csc().expect("mirror requested");
            csc.validate().expect("patched CSC invariants");
            let oracle = oracle_apply(&g, &applied);
            assert_csr_eq(&csr, &oracle, "csr");
            assert_csr_eq(&csc, &oracle.transpose(), "csc");
        }
    }

    /// The incrementally repaired answer equals a cold recompute on the
    /// mutated graph, bit-identically, after every batch — BFS (seeded
    /// monotone repair) and CC (seeded merge repair) over quirky graphs.
    #[test]
    fn repaired_outputs_match_recompute_on_quirky_graphs(
        (n, edges) in (24usize..100, proptest::collection::vec((any::<u32>(), any::<u32>()), 8..400)),
        seed in any::<u64>(),
    ) {
        let g = quirky_graph_from_edges(n, &edges, false);
        if g.num_edges() == 0 {
            return Ok(());
        }
        let batches = synthetic_churn(&g, 2, 12, seed);
        for algo in [Algo::Bfs, Algo::Cc] {
            let prog = algo.program(&ProgramOpts::from_source(0));
            let run = run_with_mutations(tiny_cfg(&g), &g, &prog, &batches, true)
                .expect("churn batches always apply");
            prop_assert!(run.all_verified(), "{}: repaired output diverged", algo.name());
        }
    }
}

/// The full stream — base run, every patch, every repair — is bit
/// identical across {1, 2, 8} host threads for all five serve-facing
/// programs (covering seeded, restart and fallback repair), and the final
/// repaired fingerprint equals a from-scratch fleet recompute on the
/// mutated graph over {1, 2} devices.
#[test]
fn mutated_runs_are_bit_identical_across_threads_and_devices() {
    const SCALE: u64 = 30_000;
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let wg = ds.weighted();
    let g = ds.graph;

    let algos = [Algo::Bfs, Algo::Sssp, Algo::Cc, Algo::Pr, Algo::Lp];
    let mut per_thread: Vec<Vec<Vec<u64>>> = Vec::new();
    let mut finals: Vec<(Algo, u64)> = Vec::new();
    for threads in [1usize, 2, 8] {
        set_num_threads(threads);
        let mut fingerprints: Vec<Vec<u64>> = Vec::new();
        for algo in algos {
            let run_g = if algo.weighted() { &wg } else { &g };
            let batches = synthetic_churn(run_g, 3, 40, 0xA11CE);
            let prog = algo.program(&ProgramOpts::from_source(0));
            let run = run_with_mutations(small_cfg(run_g), run_g, &prog, &batches, false)
                .expect("churn batches always apply");
            // the mode matrix must hold: monotone seeded repair for the
            // traversals, restart for PR, fallback for LP
            let expected = match algo {
                Algo::Bfs | Algo::Sssp | Algo::Cc => RepairMode::Seeded,
                Algo::Pr => RepairMode::Restart,
                _ => RepairMode::Fallback,
            };
            for b in &run.batches {
                assert_eq!(b.mode, expected, "{} batch {}", algo.name(), b.index);
            }
            let mut fps: Vec<u64> = vec![run.base.output.fingerprint()];
            fps.extend(run.batches.iter().map(|b| b.fingerprint));
            if threads == 1 {
                finals.push((algo, run.final_fingerprint()));
            }
            fingerprints.push(fps);
        }
        per_thread.push(fingerprints);
    }
    set_num_threads(0);
    for later in &per_thread[1..] {
        assert_eq!(
            &per_thread[0], later,
            "repair fingerprints changed with the host thread count"
        );
    }

    // final repaired answer == from-scratch fleet recompute on the final
    // mutated graph, for one and two devices
    for (algo, fp) in finals {
        let run_g = if algo.weighted() { &wg } else { &g };
        let batches = synthetic_churn(run_g, 3, 40, 0xA11CE);
        let epochs = materialize(run_g, &batches).expect("same stream, same result");
        let final_g = epochs.versions.last().expect("base version always exists");
        let prog = algo.program(&ProgramOpts::from_source(0));
        for devices in [1usize, 2] {
            let rep = run_fleet(
                small_cfg(final_g),
                FleetConfig::nvlink(devices),
                final_g,
                &prog,
            );
            assert_eq!(
                rep.output.fingerprint(),
                fp,
                "{} on {devices} device(s): fleet recompute diverged from the repaired answer",
                algo.name()
            );
        }
    }
}
