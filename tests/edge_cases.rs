//! Degenerate-input integration tests: every system must handle empty
//! frontiers, isolated vertices, single-vertex graphs, self-loop-free
//! tiny graphs and zero-weight edges without panicking or diverging from
//! the oracle.

use ascetic::algos::inmemory::run_in_memory;
use ascetic::algos::{AlgoOutput, Bfs, Cc, PageRank, Sssp};
use ascetic::baselines::{PtSystem, SubwaySystem, UvmSystem};
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic::graph::{Csr, GraphBuilder, INF_DIST};
use ascetic::sim::DeviceConfig;

fn tiny_device(g: &Csr) -> DeviceConfig {
    DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes().max(64) + 256)
}

fn check_everywhere<P: ascetic::algos::VertexProgram>(g: &Csr, prog: &P, tag: &str) {
    let dev = tiny_device(g);
    let oracle = run_in_memory(g, prog);
    let asc = AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(64)).run(g, prog);
    assert_eq!(asc.output, oracle.output, "Ascetic on {tag}");
    let sw = SubwaySystem::new(dev).run(g, prog);
    assert_eq!(sw.output, oracle.output, "Subway on {tag}");
    let pt = PtSystem::new(dev).run(g, prog);
    assert_eq!(pt.output, oracle.output, "PT on {tag}");
    let uvm = UvmSystem::new(dev).run(g, prog);
    assert_eq!(uvm.output, oracle.output, "UVM on {tag}");
}

#[test]
fn totally_disconnected_graph() {
    let g = GraphBuilder::new(64).build();
    check_everywhere(&g, &Bfs::new(7), "disconnected/BFS");
    check_everywhere(&g, &Cc::new(), "disconnected/CC");
    check_everywhere(&g, &PageRank::new(), "disconnected/PR");
}

#[test]
fn single_vertex_graph() {
    let g = GraphBuilder::new(1).build();
    let rep = AsceticSystem::new(AsceticConfig::new(tiny_device(&g)).with_chunk_bytes(64))
        .run(&g, &Bfs::new(0));
    assert_eq!(rep.output, AlgoOutput::Distances(vec![0]));
    assert_eq!(rep.iterations, 1);
}

#[test]
fn two_vertex_cycle() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 1);
    b.add_edge(1, 0);
    let g = b.build();
    check_everywhere(&g, &Bfs::new(0), "2cycle/BFS");
    check_everywhere(&g, &PageRank::new(), "2cycle/PR");
}

#[test]
fn zero_weight_edges_are_legal_for_sssp() {
    let mut b = GraphBuilder::new(4);
    b.add_weighted_edge(0, 1, 0);
    b.add_weighted_edge(1, 2, 0);
    b.add_weighted_edge(2, 3, 7);
    b.add_weighted_edge(0, 3, 9);
    let g = b.build();
    let oracle = run_in_memory(&g, &Sssp::new(0));
    assert_eq!(oracle.output, AlgoOutput::Distances(vec![0, 0, 0, 7]));
    check_everywhere(&g, &Sssp::new(0), "zero-weight/SSSP");
}

#[test]
fn saturating_distances_do_not_overflow() {
    // u32::MAX-adjacent weights: dist must saturate, not wrap
    let mut b = GraphBuilder::new(3);
    b.add_weighted_edge(0, 1, u32::MAX - 1);
    b.add_weighted_edge(1, 2, u32::MAX - 1);
    let g = b.build();
    let res = run_in_memory(&g, &Sssp::new(0));
    match res.output {
        AlgoOutput::Distances(d) => {
            assert_eq!(d[0], 0);
            assert_eq!(d[1], u32::MAX - 1);
            // saturated path cost; must be >= d[1] and not wrapped to small
            assert!(d[2] >= d[1], "no wraparound: {}", d[2]);
        }
        _ => panic!(),
    }
}

#[test]
fn source_with_no_outgoing_edges() {
    let mut b = GraphBuilder::new(3);
    b.add_edge(1, 2);
    let g = b.build();
    let rep = AsceticSystem::new(AsceticConfig::new(tiny_device(&g)).with_chunk_bytes(64))
        .run(&g, &Bfs::new(0));
    assert_eq!(
        rep.output,
        AlgoOutput::Distances(vec![0, INF_DIST, INF_DIST])
    );
}

#[test]
fn hub_larger_than_on_demand_region() {
    // one vertex's adjacency exceeds the entire on-demand region: the
    // batcher must split it and every system must still agree
    let mut b = GraphBuilder::new(4_000);
    for t in 1..4_000u32 {
        b.add_edge(0, t);
        b.add_edge(t, (t + 1) % 4_000);
    }
    let g = b.build();
    // device: vertex arrays + ~12% of edges
    let dev = DeviceConfig::p100(4_000 * 24 + g.edge_bytes() / 8);
    let oracle = run_in_memory(&g, &Bfs::new(0));
    let asc =
        AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(256)).run(&g, &Bfs::new(0));
    assert_eq!(asc.output, oracle.output);
    let sw = SubwaySystem::new(dev).run(&g, &Bfs::new(0));
    assert_eq!(sw.output, oracle.output);
}

#[test]
fn report_invariants_hold() {
    let mut b = GraphBuilder::new(500);
    for v in 0..499u32 {
        b.add_edge(v, v + 1);
        b.add_edge(v, (v * 7 + 3) % 500);
    }
    let g = b.build();
    let rep = AsceticSystem::new(AsceticConfig::new(tiny_device(&g)).with_chunk_bytes(64))
        .run(&g, &PageRank::new());
    // per-iteration records sum to the totals
    assert_eq!(rep.per_iter.len() as u32, rep.iterations);
    let active_edges: u64 = rep.per_iter.iter().map(|i| i.active_edges).sum();
    assert_eq!(
        active_edges, rep.kernels.edges,
        "kernel work == active edges"
    );
    assert!(rep.breakdown.total_ns() >= rep.breakdown.static_compute_ns);
    assert!(rep.sim_time_ns > 0);
    assert!(rep.gpu_idle_ns <= rep.sim_time_ns);
    // steady bytes never exceed what per-iteration payloads + refresh say
    let payload: u64 = rep.per_iter.iter().map(|i| i.payload_bytes).sum();
    assert_eq!(rep.xfer.h2d_bytes, payload, "steady H2D == sum of payloads");
}
