//! Cross-system correctness: every out-of-core system must produce exactly
//! the in-memory oracle's output for every algorithm on every dataset
//! class, under heavy memory oversubscription.

use ascetic::algos::inmemory::run_in_memory;
use ascetic::algos::{Bfs, Cc, PageRank, Sssp};
use ascetic::baselines::{PtSystem, SubwaySystem, UvmSystem};
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic::graph::datasets::{weighted_variant, Dataset, DatasetId};
use ascetic::graph::Csr;
use ascetic::sim::DeviceConfig;

const SCALE: u64 = 30_000;

fn device_for(g: &Csr, frac_num: u64, frac_den: u64) -> DeviceConfig {
    let mut d =
        DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() * frac_num / frac_den);
    d.uvm.page_bytes = 2048; // keep page counts meaningful at test scale
    d
}

fn check_all_systems(g: &Csr, tag: &str) {
    let dev = device_for(g, 2, 5);
    let chunk = 1024;

    macro_rules! check {
        ($prog:expr) => {{
            let prog = $prog;
            let oracle = run_in_memory(g, &prog);
            let asc =
                AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(chunk)).run(g, &prog);
            assert_eq!(asc.output, oracle.output, "Ascetic vs oracle on {tag}");
            assert_eq!(
                asc.iterations, oracle.iterations,
                "Ascetic iterations on {tag}"
            );
            let sw = SubwaySystem::new(dev).run(g, &prog);
            assert_eq!(sw.output, oracle.output, "Subway vs oracle on {tag}");
            let pt = PtSystem::new(dev).run(g, &prog);
            assert_eq!(pt.output, oracle.output, "PT vs oracle on {tag}");
            let uvm = UvmSystem::new(dev).run(g, &prog);
            assert_eq!(uvm.output, oracle.output, "UVM vs oracle on {tag}");
        }};
    }

    if g.is_weighted() {
        check!(Sssp::new(0));
    } else {
        check!(Bfs::new(0));
        check!(Cc::new());
        check!(PageRank::new());
    }
}

#[test]
fn social_dataset_all_algorithms() {
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    check_all_systems(&ds.graph, "FK unweighted");
    check_all_systems(&ds.weighted(), "FK weighted");
}

#[test]
fn web_dataset_all_algorithms() {
    let ds = Dataset::build(DatasetId::Uk, SCALE);
    check_all_systems(&ds.graph, "UK unweighted");
    check_all_systems(&ds.weighted(), "UK weighted");
}

#[test]
fn rmat_dataset_all_algorithms() {
    let g = ascetic::graph::generators::rmat_graph(
        &ascetic::graph::generators::RmatConfig::new(12, 60_000, 99).undirected(true),
    );
    check_all_systems(&g, "RMAT unweighted");
    check_all_systems(&weighted_variant(&g), "RMAT weighted");
}

#[test]
fn msbfs_extension_matches_oracle_under_all_systems() {
    use ascetic::algos::msbfs::{msbfs_reference, MsBfs};
    use ascetic::algos::AlgoOutput;
    let ds = Dataset::build(DatasetId::Uk, SCALE);
    let g = &ds.graph;
    let dev = device_for(g, 2, 5);
    let sources: Vec<u32> = (0..48u32)
        .map(|i| i * 71 % g.num_vertices() as u32)
        .collect();
    let mut sources = sources;
    sources.sort_unstable();
    sources.dedup();
    let expect = AlgoOutput::Labels(msbfs_reference(g, &sources));
    let oracle = run_in_memory(g, &MsBfs::new(sources.clone()));
    assert_eq!(oracle.output, expect);
    let asc = AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(1024))
        .run(g, &MsBfs::new(sources.clone()));
    assert_eq!(asc.output, expect, "Ascetic MS-BFS");
    let sw = SubwaySystem::new(dev).run(g, &MsBfs::new(sources.clone()));
    assert_eq!(sw.output, expect, "Subway MS-BFS");
    let pt = PtSystem::new(dev).run(g, &MsBfs::new(sources.clone()));
    assert_eq!(pt.output, expect, "PT MS-BFS");
    let uvm = UvmSystem::new(dev).run(g, &MsBfs::new(sources));
    assert_eq!(uvm.output, expect, "UVM MS-BFS");
}

#[test]
fn closeness_extension_matches_oracle_under_all_systems() {
    use ascetic::algos::closeness::{closeness_reference, Closeness};
    use ascetic::algos::AlgoOutput;
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = &ds.graph;
    let dev = device_for(g, 2, 5);
    let sources: Vec<u32> = (0..12u32)
        .map(|i| i * 131 % g.num_vertices() as u32)
        .collect();
    let mut sources = sources;
    sources.sort_unstable();
    sources.dedup();
    let expect = AlgoOutput::Labels(closeness_reference(g, &sources));
    assert_eq!(
        run_in_memory(g, &Closeness::new(sources.clone())).output,
        expect
    );
    let asc = AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(1024))
        .run(g, &Closeness::new(sources.clone()));
    assert_eq!(asc.output, expect, "Ascetic closeness");
    let sw = SubwaySystem::new(dev).run(g, &Closeness::new(sources.clone()));
    assert_eq!(sw.output, expect, "Subway closeness");
    let uvm = UvmSystem::new(dev).run(g, &Closeness::new(sources));
    assert_eq!(uvm.output, expect, "UVM closeness");
}

#[test]
fn kcore_extension_matches_oracle_under_all_systems() {
    use ascetic::algos::kcore::{kcore_reference, KCore};
    use ascetic::algos::AlgoOutput;
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = &ds.graph;
    let dev = device_for(g, 2, 5);
    for k in [2u32, 6] {
        let expect = AlgoOutput::Labels(kcore_reference(g, k));
        let oracle = run_in_memory(g, &KCore::new(k));
        assert_eq!(
            oracle.output, expect,
            "in-memory vs peeling reference, k={k}"
        );
        let asc = AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(1024))
            .run(g, &KCore::new(k));
        assert_eq!(asc.output, expect, "Ascetic k-core, k={k}");
        let sw = SubwaySystem::new(dev).run(g, &KCore::new(k));
        assert_eq!(sw.output, expect, "Subway k-core, k={k}");
        let pt = PtSystem::new(dev).run(g, &KCore::new(k));
        assert_eq!(pt.output, expect, "PT k-core, k={k}");
        let uvm = UvmSystem::new(dev).run(g, &KCore::new(k));
        assert_eq!(uvm.output, expect, "UVM k-core, k={k}");
    }
}

#[test]
fn extreme_oversubscription_still_correct() {
    // device edge budget ~8% of the dataset: the on-demand path dominates
    let ds = Dataset::build(DatasetId::Gs, SCALE);
    let g = &ds.graph;
    let dev = device_for(g, 2, 25);
    let oracle = run_in_memory(g, &Cc::new());
    let asc = AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(512)).run(g, &Cc::new());
    assert_eq!(asc.output, oracle.output);
    let sw = SubwaySystem::new(dev).run(g, &Cc::new());
    assert_eq!(sw.output, oracle.output);
}

#[test]
fn barely_oversubscribed_still_correct() {
    // device edge budget ~95% of the dataset: almost everything static
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = &ds.graph;
    let dev = device_for(g, 19, 20);
    let oracle = run_in_memory(g, &Bfs::new(0));
    let asc =
        AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(1024)).run(g, &Bfs::new(0));
    assert_eq!(asc.output, oracle.output);
    // nearly everything should be served statically
    let static_edges: u64 = asc.per_iter.iter().map(|i| i.static_edges).sum();
    let total: u64 = asc.per_iter.iter().map(|i| i.active_edges).sum();
    assert!(
        static_edges * 10 >= total * 8,
        "static {static_edges} of {total}"
    );
}
