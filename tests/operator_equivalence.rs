//! Operator-equivalence matrix (satellite of the operator-core redesign).
//!
//! Every ported program × {push, pull where supported} × {1, 2, 8} host
//! threads × {1, 2} devices must produce an output fingerprint
//! byte-identical to the pre-refactor goldens harvested from the
//! per-algorithm-loop implementation. The fingerprints below were captured
//! on the tree immediately before the operator core landed
//! (`ASCETIC_PRINT_GOLDENS=1 cargo test --test operator_equivalence -- --nocapture`
//! prints a fresh table); any drift means the operator decomposition
//! changed an answer.

use ascetic::algos::{
    Bfs, Cc, Closeness, KCore, MsBfs, MsBfsDistances, MsSsspDistances, PageRank, Sssp,
    VertexProgram,
};
use ascetic::core::{
    run_fleet, AsceticConfig, AsceticSystem, DirectionMode, FleetConfig, OutOfCoreSystem,
};
use ascetic::graph::datasets::{Dataset, DatasetId};
use ascetic::graph::{Csr, VertexId};
use ascetic::par::set_num_threads;
use ascetic::sim::DeviceConfig;

const SCALE: u64 = 30_000;

/// Deterministic multi-source sample (same scheme as the CLI).
fn sample_sources(g: &Csr, k: usize) -> Vec<VertexId> {
    let n = g.num_vertices() as u32;
    let mut s: Vec<VertexId> = (0..k as u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % n)
        .collect();
    s.sort_unstable();
    s.dedup();
    s
}

/// Pre-refactor golden fingerprints, one per program × direction (outputs
/// are thread- and device-count-invariant, so a single fingerprint pins
/// the whole {1,2,8} threads × {1,2} devices cell block).
const GOLDENS: &[(&str, &str, u64)] = &[
    ("BFS", "push", 0xf84eeb5a6de12deb),
    ("BFS", "pull", 0xf84eeb5a6de12deb),
    ("SSSP", "push", 0x813e509cc10a0c6a),
    ("CC", "push", 0x6b8a187c608ba6ac),
    ("CC", "pull", 0x6b8a187c608ba6ac),
    ("PR", "push", 0x903088e45bd4c333),
    ("PR", "pull", 0x903088e45bd4c333),
    ("k-core", "push", 0x1308729b4a4f645c),
    ("MS-BFS", "push", 0x2f974785126db92c),
    ("closeness", "push", 0x75f9b2d624f00d75),
    ("MS-BFS-D", "push", 0x13705bcf76a972f3),
    ("MS-SSSP-D", "push", 0x56cbaa1ccb09740c),
];

fn golden_for(name: &str, dir: &str) -> u64 {
    GOLDENS
        .iter()
        .find(|(n, d, _)| *n == name && *d == dir)
        .map(|(_, _, fp)| *fp)
        .unwrap_or_else(|| panic!("no golden for {name}/{dir}"))
}

struct Case {
    name: &'static str,
    weighted: bool,
    pull: bool,
    prog: Box<dyn Fn(&Csr) -> Runner>,
}

/// Type-erased single run: (system-or-fleet, graph, direction) → fingerprint.
enum Runner {
    Bfs(Bfs),
    Sssp(Sssp),
    Cc(Cc),
    Pr(PageRank),
    KCore(KCore),
    MsBfs(MsBfs),
    Closeness(Closeness),
    MsBfsD(MsBfsDistances),
    MsSsspD(MsSsspDistances),
}

impl Runner {
    fn run(&self, cfg: AsceticConfig, g: &Csr, devices: usize) -> u64 {
        fn go<P: VertexProgram>(prog: &P, cfg: AsceticConfig, g: &Csr, devices: usize) -> u64 {
            if devices == 1 {
                AsceticSystem::new(cfg).run(g, prog).output.fingerprint()
            } else {
                run_fleet(cfg, FleetConfig::nvlink(devices), g, prog)
                    .output
                    .fingerprint()
            }
        }
        match self {
            Runner::Bfs(p) => go(p, cfg, g, devices),
            Runner::Sssp(p) => go(p, cfg, g, devices),
            Runner::Cc(p) => go(p, cfg, g, devices),
            Runner::Pr(p) => go(p, cfg, g, devices),
            Runner::KCore(p) => go(p, cfg, g, devices),
            Runner::MsBfs(p) => go(p, cfg, g, devices),
            Runner::Closeness(p) => go(p, cfg, g, devices),
            Runner::MsBfsD(p) => go(p, cfg, g, devices),
            Runner::MsSsspD(p) => go(p, cfg, g, devices),
        }
    }
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "BFS",
            weighted: false,
            pull: true,
            prog: Box::new(|_| Runner::Bfs(Bfs::new(0))),
        },
        Case {
            name: "SSSP",
            weighted: true,
            pull: false,
            prog: Box::new(|_| Runner::Sssp(Sssp::new(0))),
        },
        Case {
            name: "CC",
            weighted: false,
            pull: true,
            prog: Box::new(|_| Runner::Cc(Cc::new())),
        },
        Case {
            name: "PR",
            weighted: false,
            pull: true,
            prog: Box::new(|_| Runner::Pr(PageRank::new())),
        },
        Case {
            name: "k-core",
            weighted: false,
            pull: false,
            prog: Box::new(|_| Runner::KCore(KCore::new(4))),
        },
        Case {
            name: "MS-BFS",
            weighted: false,
            pull: false,
            prog: Box::new(|g| Runner::MsBfs(MsBfs::new(sample_sources(g, 8)))),
        },
        Case {
            name: "closeness",
            weighted: false,
            pull: false,
            prog: Box::new(|g| Runner::Closeness(Closeness::new(sample_sources(g, 8)))),
        },
        Case {
            name: "MS-BFS-D",
            weighted: false,
            pull: false,
            prog: Box::new(|g| Runner::MsBfsD(MsBfsDistances::new(sample_sources(g, 8)))),
        },
        Case {
            name: "MS-SSSP-D",
            weighted: true,
            pull: false,
            prog: Box::new(|g| Runner::MsSsspD(MsSsspDistances::new(sample_sources(g, 8)))),
        },
    ]
}

/// The two new operator-core programs have no pre-refactor goldens; their
/// anchor is the in-memory oracle. The out-of-core session and the
/// 2-device fleet must reproduce it bit-for-bit at every thread count —
/// the "new algorithms inherit the whole engine" guarantee.
#[test]
fn new_programs_match_in_memory_oracles() {
    use ascetic::algos::inmemory::run_in_memory;
    use ascetic::algos::{Algo, ProgramOpts};
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = ds.graph.clone();
    for algo in [Algo::Lp, Algo::Bc] {
        let prog = algo.program(&ProgramOpts::from_source(0));
        let oracle = run_in_memory(&g, &prog).output.fingerprint();
        let dev = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
        let cfg = AsceticConfig::new(dev).with_chunk_bytes(1024);
        for threads in [1usize, 8] {
            set_num_threads(threads);
            for devices in [1usize, 2] {
                let fp = if devices == 1 {
                    AsceticSystem::new(cfg).run(&g, &prog).output.fingerprint()
                } else {
                    run_fleet(cfg, FleetConfig::nvlink(devices), &g, &prog)
                        .output
                        .fingerprint()
                };
                assert_eq!(
                    fp,
                    oracle,
                    "{}: {threads} threads x {devices} devices drifted from the in-memory oracle",
                    algo.display()
                );
            }
        }
        set_num_threads(0);
    }
}

/// The full matrix in one test fn: `set_num_threads` is process-global, so
/// thread counts must be swept sequentially, not across parallel tests.
#[test]
fn every_program_matches_pre_refactor_goldens() {
    let harvest = std::env::var_os("ASCETIC_PRINT_GOLDENS").is_some();
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let g = ds.graph.clone();
    let wg = ds.weighted();

    for case in cases() {
        let graph = if case.weighted { &wg } else { &g };
        let dev = DeviceConfig::p100(graph.num_vertices() as u64 * 24 + graph.edge_bytes() / 2);
        let runner = (case.prog)(graph);
        let dirs: &[(&str, DirectionMode)] = if case.pull {
            &[("push", DirectionMode::Push), ("pull", DirectionMode::Pull)]
        } else {
            &[("push", DirectionMode::Push)]
        };
        for (dname, dir) in dirs {
            let cfg = AsceticConfig::new(dev)
                .with_chunk_bytes(1024)
                .with_direction(*dir);
            let mut first: Option<u64> = None;
            for threads in [1usize, 2, 8] {
                set_num_threads(threads);
                for devices in [1usize, 2] {
                    let fp = runner.run(cfg, graph, devices);
                    if let Some(f) = first {
                        assert_eq!(
                            f, fp,
                            "{} {dname}: fingerprint varies with {} threads x {} devices",
                            case.name, threads, devices
                        );
                    } else {
                        first = Some(fp);
                    }
                }
            }
            set_num_threads(0);
            let fp = first.unwrap();
            if harvest {
                println!("    (\"{}\", \"{dname}\", {fp:#018x}),", case.name);
            } else {
                assert_eq!(
                    fp,
                    golden_for(case.name, dname),
                    "{} {dname}: output drifted from the pre-refactor golden",
                    case.name
                );
            }
        }
    }
}
