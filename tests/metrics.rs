//! Cross-crate observability invariants: the `MetricsSnapshot` embedded in
//! every `RunReport` must agree *exactly* with the report's own canonical
//! fields (no drift between the live registry and the accounted totals),
//! and both the snapshot and the event stream must be bit-deterministic.

use ascetic::algos::{Bfs, PageRank};
use ascetic::baselines::{PtSystem, SubwaySystem, UvmSystem};
use ascetic::core::report::RunReport;
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic::graph::datasets::{Dataset, DatasetId, PAPER_GPU_MEM_BYTES};
use ascetic::sim::DeviceConfig;

const SCALE: u64 = 8_000;

fn env() -> (Dataset, DeviceConfig, usize) {
    let ds = Dataset::build(DatasetId::Fk, SCALE);
    let mut dev = DeviceConfig::p100(PAPER_GPU_MEM_BYTES / SCALE);
    dev.uvm.page_bytes = 8192;
    (ds, dev, 8192)
}

/// The snapshot's transfer counters must equal `XferStats` to the byte —
/// the ISSUE's acceptance bar for the observability layer.
fn assert_snapshot_matches(rep: &RunReport) {
    let m = &rep.metrics;
    let sys = rep.system;
    assert_eq!(
        m.counter("xfer.h2d_bytes"),
        Some(rep.xfer.h2d_bytes),
        "{sys}"
    );
    assert_eq!(
        m.counter("xfer.d2h_bytes"),
        Some(rep.xfer.d2h_bytes),
        "{sys}"
    );
    assert_eq!(m.counter("xfer.h2d_ops"), Some(rep.xfer.h2d_ops), "{sys}");
    assert_eq!(m.counter("xfer.d2h_ops"), Some(rep.xfer.d2h_ops), "{sys}");
    assert_eq!(
        m.counter("kernel.launches"),
        Some(rep.kernels.launches),
        "{sys}"
    );
    assert_eq!(m.counter("kernel.edges"), Some(rep.kernels.edges), "{sys}");
    assert_eq!(
        m.counter("iterations"),
        Some(rep.iterations as u64),
        "{sys}"
    );
    assert_eq!(m.gauge("sim_time_ns"), Some(rep.sim_time_ns), "{sys}");
    assert_eq!(m.gauge("gpu.idle_ns"), Some(rep.gpu_idle_ns), "{sys}");
    assert_eq!(m.label("system"), Some(rep.system), "{sys}");
    assert_eq!(m.label("algo"), Some(rep.algorithm), "{sys}");
}

#[test]
fn snapshot_equals_xferstats_on_every_system() {
    let (ds, dev, chunk) = env();
    let g = &ds.graph;
    assert_snapshot_matches(
        &AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(chunk)).run(g, &Bfs::new(0)),
    );
    assert_snapshot_matches(&SubwaySystem::new(dev).run(g, &Bfs::new(0)));
    assert_snapshot_matches(&PtSystem::new(dev).run(g, &Bfs::new(0)));
    assert_snapshot_matches(&UvmSystem::new(dev).run(g, &PageRank::new()));
}

#[test]
fn snapshot_and_events_are_bit_deterministic() {
    let (ds, dev, chunk) = env();
    let g = &ds.graph;
    let cfg = AsceticConfig::new(dev)
        .with_chunk_bytes(chunk)
        .with_events(true);
    let a = AsceticSystem::new(cfg).run(g, &PageRank::new());
    let b = AsceticSystem::new(cfg).run(g, &PageRank::new());
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert_eq!(a.metrics.to_csv(), b.metrics.to_csv());
    let (ea, eb) = (a.events.expect("events on"), b.events.expect("events on"));
    assert_eq!(ea.to_jsonl(), eb.to_jsonl());
    assert!(!ea.is_empty(), "an Ascetic run must produce events");
    assert_eq!(ea.dropped(), 0, "capacity must cover a small run");
}

#[test]
fn event_stream_is_clock_ordered_and_valid_json() {
    let (ds, dev, chunk) = env();
    let g = &ds.graph;
    let rep = AsceticSystem::new(
        AsceticConfig::new(dev)
            .with_chunk_bytes(chunk)
            .with_events(true),
    )
    .run(g, &Bfs::new(0));
    let events = rep.events.expect("events on");
    for line in events.to_jsonl().lines() {
        ascetic::obs::json::validate(line).unwrap_or_else(|e| panic!("bad JSON {e}: {line}"));
    }
    // Virtual-clock stamps never exceed the run's makespan.
    assert!(events.iter().all(|e| e.t_ns <= rep.sim_time_ns));
    // One iter_start / iter_end pair per iteration.
    let starts = events
        .iter()
        .filter(|e| e.event.kind() == "iter_start")
        .count();
    assert_eq!(starts as u32, rep.iterations);
}

#[test]
fn summary_json_embeds_the_snapshot() {
    let (ds, dev, chunk) = env();
    let g = &ds.graph;
    let rep =
        AsceticSystem::new(AsceticConfig::new(dev).with_chunk_bytes(chunk)).run(g, &Bfs::new(0));
    let json = rep.summary_json();
    ascetic::obs::json::validate(&json).expect("summary_json is valid JSON");
    assert!(json.contains("\"metrics\":"));
    assert!(json.contains(&format!("\"sim_time_ns\":{}", rep.sim_time_ns)));
    let csv = rep.summary_csv();
    assert!(csv.starts_with(RunReport::summary_csv_header()));
    assert_eq!(csv.lines().count(), 2);
}
