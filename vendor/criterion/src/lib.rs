//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be downloaded. This crate implements the subset of its API the
//! workspace's benches use (`Criterion`, benchmark groups, `Bencher::iter`,
//! `Throughput`, `black_box`, the `criterion_group!`/`criterion_main!`
//! macros) with plain wall-clock timing and stdout reporting — enough to
//! compile every bench target and get indicative numbers, with none of the
//! statistical machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work attributed to one iteration, for *:/s reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn report(name: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = if iters == 0 {
        Duration::ZERO
    } else {
        elapsed / iters as u32
    };
    let rate = throughput
        .map(|t| {
            let (amount, unit) = match t {
                Throughput::Bytes(b) => (b as f64, "MB/s"),
                Throughput::Elements(e) => (e as f64, "Melem/s"),
            };
            let secs = per_iter.as_secs_f64().max(1e-12);
            format!("  {:>10.1} {unit}", amount / secs / 1e6)
        })
        .unwrap_or_default();
    println!("bench {name:<48} {per_iter:>12.3?}/iter{rate}");
}

impl Criterion {
    /// Number of timed iterations per benchmark (bounded for the stub).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name.as_ref(), b.iters, b.elapsed, None);
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Iterations per benchmark within the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Attribute per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, mut f: F) {
        let iters = self.sample_size.unwrap_or(self.criterion.sample_size) as u64;
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.as_ref()),
            b.iters,
            b.elapsed,
            self.throughput,
        );
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, a_bench);

    #[test]
    fn group_and_main_macros_compile_and_run() {
        benches();
    }
}
