//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so the real `rand` cannot
//! be downloaded; this crate implements exactly the surface the workspace
//! uses — `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`
//! and `rngs::SmallRng` — over a xoshiro256++ generator with SplitMix64
//! seeding. Everything is deterministic: the same seed yields the same
//! stream on every platform and thread count, which is all the graph
//! generators require.

#![forbid(unsafe_code)]

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (deterministic).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a "standard" uniform distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Sample one value.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_ints {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn standard<R: RngCore>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
standard_ints!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
               usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
               i64 => next_u64, isize => next_u64);

/// Ranges that can be sampled from (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply method
/// (`span == 0` means the full 64-bit domain).
fn lemire_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(lemire_u64(rng, span) as $t)
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize);

macro_rules! float_ranges {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::standard(rng) * (hi - lo)
            }
        }
    )*};
}
float_ranges!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), mirroring
    /// `rand`'s 64-bit `SmallRng` choice.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = a.gen_range(0u64..100);
            assert_eq!(x, b.gen_range(0u64..100));
            assert!(x < 100);
        }
        let mut c = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = c.gen();
            assert!((0.0..1.0).contains(&f));
            let g = c.gen_range(0.5f64..=2.0);
            assert!((0.5..=2.0).contains(&g));
            let i = c.gen_range(3usize..=3);
            assert_eq!(i, 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1 << 60)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
