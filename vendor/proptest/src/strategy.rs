//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::string::StringParam;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// Type of generated values.
    type Value: std::fmt::Debug;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate from `self`, then from the strategy `f` builds — for
    /// dependent inputs (e.g. an index into a generated vector).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.u64_below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(rng.u64_below(span) as $t)
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.f64_unit() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.f64_unit() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

/// Regex-ish string pattern strategies (`\PC*`, `\PC{a,b}`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringParam::parse(self).generate(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident.$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategies!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn ranges_tuples_maps_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (1u64..10, 0.0f64..=1.0).prop_map(|(a, b)| (a * 2, b));
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!((2..20).contains(&a) && a % 2 == 0);
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn union_and_vec_cover_arms() {
        let mut rng = TestRng::deterministic("union");
        let strat = crate::prop_oneof![(0u8..1).prop_map(|_| "a"), (0u8..1).prop_map(|_| "b"),];
        let picks: Vec<&str> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(picks.contains(&"a") && picks.contains(&"b"));

        let v = crate::collection::vec(any::<u32>(), 3..7);
        for _ in 0..20 {
            let xs = v.generate(&mut rng);
            assert!((3..7).contains(&xs.len()));
        }
    }

    #[test]
    fn string_patterns_have_bounded_len() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..50 {
            let s = "\\PC{0,24}".generate(&mut rng);
            assert!(s.chars().count() <= 24);
            let t = "\\PC*".generate(&mut rng);
            assert!(t.chars().count() <= 64);
        }
    }
}

#[cfg(test)]
mod macro_tests {
    crate::proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig { cases: 32, ..Default::default() })]

        #[test]
        fn bindings_and_assertions_work(a in 0u64..100, b in 0u64..100) {
            crate::prop_assume!(a != 99);
            crate::prop_assert!(a < 100);
            crate::prop_assert_eq!(a + b, b + a);
            crate::prop_assert_ne!(a, a + b + 1);
        }
    }
}
