//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be downloaded. This crate implements the subset of its API the
//! workspace's property tests use: the [`proptest!`] macro, [`Strategy`]
//! with `prop_map`, ranges / tuples / `Just` / regex-string / collection
//! strategies, `prop_oneof!`, and the `prop_assert*` family.
//!
//! Differences from the real thing, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs
//!   verbatim; it is not minimized.
//! * **Deterministic generation.** Each test derives its RNG seed from the
//!   test's name, so every run explores the same cases — failures are
//!   reproducible by construction, at the cost of never exploring new
//!   inputs across runs.
//! * Regex string strategies understand only the `\PC*` / `\PC{a,b}`
//!   shapes the workspace uses (printable chars, bounded length); any
//!   other pattern falls back to short printable ASCII strings.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod arbitrary {
    //! `any::<T>()`: the full-domain strategy for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: std::fmt::Debug + Sized {
        /// Sample one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_ints {
        ($($t:ty => $via:ident),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }
    arb_ints!(u8 => next_u64, u16 => next_u64, u32 => next_u64, u64 => next_u64,
              usize => next_u64, i8 => next_u64, i16 => next_u64, i32 => next_u64,
              i64 => next_u64, isize => next_u64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a wide magnitude range.
            let m = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let exp = (rng.next_u64() % 64) as i32 - 32;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * m * (2.0f64).powi(exp)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: elements from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! Deterministic case runner plumbing used by the [`crate::proptest!`]
    //! macro expansion.

    /// Per-test configuration (`cases` is the only knob honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property does not hold.
        Fail(String),
        /// `prop_assume!` rejection: the case is skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// A rejected (skipped) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic generator: splitmix64 core seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a), so each test has its own
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, span)`; `span == 0` means full domain.
        pub fn u64_below(&mut self, span: u64) -> u64 {
            if span == 0 {
                return self.next_u64();
            }
            let threshold = span.wrapping_neg() % span;
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (span as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `usize` in `range`.
        pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
            assert!(range.start < range.end, "empty range");
            range.start + self.u64_below((range.end - range.start) as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod string {
    //! The tiny regex-pattern subset (`\PC*`, `\PC{a,b}`) used as string
    //! strategies by the workspace tests.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A string strategy parsed from a regex-ish pattern.
    #[derive(Clone, Debug)]
    pub struct StringParam {
        min: usize,
        max: usize,
    }

    impl StringParam {
        /// Parse `\PC*` (any printable, 0..64) or `\PC{a,b}`; anything
        /// else falls back to short printable strings.
        pub fn parse(pattern: &str) -> Self {
            if let Some(rest) = pattern.strip_prefix("\\PC") {
                if rest == "*" {
                    return StringParam { min: 0, max: 64 };
                }
                if let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
                    if let Some((a, b)) = body.split_once(',') {
                        if let (Ok(a), Ok(b)) = (a.parse(), b.parse()) {
                            return StringParam { min: a, max: b };
                        }
                    }
                }
            }
            StringParam { min: 0, max: 16 }
        }
    }

    /// Printable characters including escapes-relevant ones (quotes,
    /// backslashes) and a few multi-byte code points.
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '"', '\\', '/', '\'', '{', '}', '[', ']', ':', ',',
        '.', '-', '_', '+', '=', '~', '#', 'é', 'Ω', '✓', '語', '𝄞',
    ];

    impl Strategy for StringParam {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.usize_in(self.min..self.max + 1);
            (0..len)
                .map(|_| ALPHABET[rng.usize_in(0..ALPHABET.len())])
                .collect()
        }
    }
}

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    /// Alias so `prop::collection::vec(..)` works inside the macro body.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of
/// `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expand one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::core::module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut inputs = ::std::string::String::new();
                $(
                    let value = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    inputs.push_str(&::std::format!(
                        "\n  {} = {:?}", stringify!($arg), &value
                    ));
                    let $arg = value;
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => ::std::panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1, config.cases, e, inputs
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
