//! Amortizing the static region across an analytics pipeline.
//!
//! ```text
//! cargo run --release --example analytics_session
//! ```
//!
//! The paper (§4.3): "In practice, the Static Region can be reused
//! throughout the graph processing". A realistic analytics job runs several
//! algorithms over the same graph — here BFS (reachability), CC
//! (communities), k-core (influencer filtering) and PageRank (ranking) —
//! and an [`AsceticSession`] pays the prestore exactly once.

use ascetic::algos::{Bfs, Cc, KCore, PageRank};
use ascetic::core::session::AsceticSession;
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic::graph::generators::{social_graph, SocialConfig};
use ascetic::sim::DeviceConfig;

fn main() {
    println!("building graph ...");
    let g = social_graph(&SocialConfig::new(120_000, 2_400_000, 13));
    let device = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    println!(
        "graph: {} vertices, {} edges ({:.1} MB); device {:.1} MB\n",
        g.num_vertices(),
        g.num_edges(),
        g.edge_bytes() as f64 / 1e6,
        device.mem_bytes as f64 / 1e6
    );

    // --- pipeline via one session: prestore paid once -------------------
    let mut session = AsceticSession::new(AsceticConfig::new(device), &g);
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "step", "time", "steady xfer", "prestore", "static hit"
    );
    let mut session_total_ns = 0u64;
    let mut session_total_bytes = 0u64;
    let hub = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.degree(v))
        .unwrap();
    macro_rules! step {
        ($name:expr, $prog:expr) => {{
            let rep = session.run(&$prog);
            let static_edges: u64 = rep.per_iter.iter().map(|i| i.static_edges).sum();
            let total: u64 = rep.per_iter.iter().map(|i| i.active_edges).sum();
            println!(
                "{:<10} {:>8.2}ms {:>10.2}MB {:>10.2}MB {:>9.1}%",
                $name,
                rep.sim_time_ns as f64 / 1e6,
                rep.steady_bytes() as f64 / 1e6,
                rep.prestore_bytes as f64 / 1e6,
                static_edges as f64 / total.max(1) as f64 * 100.0
            );
            session_total_ns += rep.sim_time_ns;
            session_total_bytes += rep.total_bytes_with_prestore();
        }};
    }
    step!("bfs", Bfs::new(hub));
    step!("cc", Cc::new());
    step!("kcore-8", KCore::new(8));
    step!("pagerank", PageRank::new());

    // --- the same pipeline as four independent one-shot runs ------------
    let mut oneshot_total_ns = 0u64;
    let mut oneshot_total_bytes = 0u64;
    macro_rules! oneshot {
        ($prog:expr) => {{
            let rep = AsceticSystem::new(AsceticConfig::new(device)).run(&g, &$prog);
            oneshot_total_ns += rep.sim_time_ns;
            oneshot_total_bytes += rep.total_bytes_with_prestore();
        }};
    }
    oneshot!(Bfs::new(hub));
    oneshot!(Cc::new());
    oneshot!(KCore::new(8));
    oneshot!(PageRank::new());

    println!(
        "\npipeline totals: session {:.2} ms / {:.1} MB  vs  four one-shots {:.2} ms / {:.1} MB",
        session_total_ns as f64 / 1e6,
        session_total_bytes as f64 / 1e6,
        oneshot_total_ns as f64 / 1e6,
        oneshot_total_bytes as f64 / 1e6,
    );
    println!(
        "amortization saved {:.2} ms and {:.1} MB of prestore traffic ({} runs, 1 prestore)",
        (oneshot_total_ns - session_total_ns) as f64 / 1e6,
        (oneshot_total_bytes - session_total_bytes) as f64 / 1e6,
        session.runs()
    );
}
