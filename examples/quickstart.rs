//! Quickstart: run BFS on an out-of-GPU-memory graph with Ascetic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic social graph that is ~2.5× larger than the simulated
//! device's memory, runs BFS under the Ascetic framework, verifies the
//! result against an in-memory oracle, and prints the run report.

use ascetic::algos::{inmemory::run_in_memory, Bfs};
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic::graph::generators::{social_graph, SocialConfig};
use ascetic::sim::DeviceConfig;

fn main() {
    // 1. A graph: 100k-vertex power-law social network, ~4M CSR entries
    //    (~16 MB of edge data).
    println!("building graph ...");
    let graph = social_graph(&SocialConfig::new(100_000, 2_000_000, 7));
    println!(
        "graph: {} vertices, {} edges, {:.1} MB of edge data",
        graph.num_vertices(),
        graph.num_edges(),
        graph.edge_bytes() as f64 / 1e6
    );

    // 2. A device that cannot hold it: ~40% of the dataset.
    let mem = graph.num_vertices() as u64 * 24 + graph.edge_bytes() * 2 / 5;
    let device = DeviceConfig::p100(mem);
    println!("device memory: {:.1} MB (oversubscribed)", mem as f64 / 1e6);

    // 3. Run BFS from vertex 0 under Ascetic (paper-default configuration:
    //    K = 10%, Eq (2) region split, overlap on).
    let system = AsceticSystem::new(AsceticConfig::new(device));
    let report = system.run(&graph, &Bfs::new(0));

    // 4. Verify against the in-memory oracle.
    let oracle = run_in_memory(&graph, &Bfs::new(0));
    assert_eq!(
        report.output, oracle.output,
        "out-of-core result must match in-memory"
    );
    println!("\nresult verified against in-memory oracle ✓");

    // 5. Inspect the report: `RunReport` implements `Display` (the same
    //    summary the CLI prints), and embeds a `MetricsSnapshot` with the
    //    full counter/gauge/histogram state of the run.
    println!("\n== run report ==");
    print!("{report}");
    println!(
        "DMA ops:           {} ({:.2} MB steady payload)",
        report.xfer.h2d_ops + report.xfer.d2h_ops,
        report.xfer.total_bytes() as f64 / 1e6
    );
    println!(
        "metrics snapshot:  {} series (try report.metrics.to_json())",
        report.metrics.len()
    );
}
