//! Compare all four out-of-core systems on one workload.
//!
//! ```text
//! cargo run --release --example compare_systems
//! ```
//!
//! Runs PageRank on a scaled friendster-konect stand-in under PT, UVM,
//! Subway and Ascetic, checks that they all produce the same ranks, and
//! prints a side-by-side of time / transfer / idle — a miniature of the
//! paper's Tables 4–5.

use ascetic::algos::PageRank;
use ascetic::baselines::{PtSystem, SubwaySystem, UvmSystem};
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem, RunReport};
use ascetic::graph::datasets::{Dataset, DatasetId, PAPER_GPU_MEM_BYTES};

fn main() {
    let scale = 2_000; // 1/2000 of the paper's sizes: quick but oversubscribed
    println!("building friendster-konect stand-in (scale 1/{scale}) ...");
    let ds = Dataset::build(DatasetId::Fk, scale);
    let g = &ds.graph;
    let device = ascetic::sim::DeviceConfig::p100(PAPER_GPU_MEM_BYTES / scale);
    println!(
        "graph: {} vertices, {} edges ({:.1} MB); device: {:.1} MB\n",
        g.num_vertices(),
        g.num_edges(),
        g.edge_bytes() as f64 / 1e6,
        device.mem_bytes as f64 / 1e6
    );

    let pr = PageRank::new();
    let reports: Vec<RunReport> = vec![
        PtSystem::new(device).run(g, &pr),
        UvmSystem::new(device).run(g, &pr),
        SubwaySystem::new(device).run(g, &pr),
        AsceticSystem::new(AsceticConfig::new(device)).run(g, &pr),
    ];

    // all systems must agree (fixed-point PR is bit-deterministic)
    for r in &reports[1..] {
        assert_eq!(
            r.output, reports[0].output,
            "{} disagrees with {}",
            r.system, reports[0].system
        );
    }
    println!("all systems produced identical PageRank vectors ✓\n");

    println!(
        "{:<8} {:>10} {:>9} {:>12} {:>10} {:>8}",
        "system", "time", "speedup", "transferred", "xfer/data", "GPU idle"
    );
    let base = reports[0].seconds();
    for r in &reports {
        println!(
            "{:<8} {:>8.2}ms {:>8.2}X {:>10.2}MB {:>9.1}X {:>7.1}%",
            r.system,
            r.seconds() * 1e3,
            base / r.seconds(),
            r.total_bytes_with_prestore() as f64 / 1e6,
            r.total_bytes_with_prestore() as f64 / g.edge_bytes() as f64,
            r.gpu_idle_fraction() * 100.0,
        );
    }
    println!(
        "\nexpected shape (paper): PT slowest and most traffic; UVM slow via page\n\
         faults; Subway lean on traffic but serialized; Ascetic fastest with the\n\
         least steady-state traffic."
    );
}
