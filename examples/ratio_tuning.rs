//! Tuning the static/on-demand split (a miniature of the paper's Fig. 10).
//!
//! ```text
//! cargo run --release --example ratio_tuning
//! ```
//!
//! Sweeps the static-region ratio for Connected Components on an R-MAT
//! graph, prints the time curve with its Tsr/Tfilling/Ttransfer/Tondemand
//! breakdown, and compares the Eq (2) automatic choice against the sweep's
//! best point.

use ascetic::algos::Cc;
use ascetic::core::ratio::static_share;
use ascetic::core::system::{edge_budget_bytes, reserve_vertex_arrays};
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic::graph::generators::{rmat_graph, RmatConfig};
use ascetic::sim::{DeviceConfig, Gpu};

fn main() {
    println!("building R-MAT graph ...");
    let g = rmat_graph(&RmatConfig::new(17, 1_500_000, 3).undirected(true));
    println!(
        "graph: {} vertices, {} edges ({:.1} MB)",
        g.num_vertices(),
        g.num_edges(),
        g.edge_bytes() as f64 / 1e6
    );
    let device = DeviceConfig::p100(g.num_vertices() as u64 * 24 + g.edge_bytes() / 2);
    println!("device: {:.1} MB\n", device.mem_bytes as f64 / 1e6);

    println!(
        "{:>5} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "R", "total", "Tsr", "Tfill", "Ttransfer", "Tondemand"
    );
    let mut best = (0.0f64, f64::INFINITY);
    for step in 0..=10 {
        let r = step as f64 / 10.0;
        let cfg = AsceticConfig::new(device).with_static_ratio(r);
        let rep = AsceticSystem::new(cfg).run(&g, &Cc::new());
        let ms = |ns: u64| ns as f64 / 1e6;
        println!(
            "{:>5.1} {:>8.2}ms {:>7.2}ms {:>7.2}ms {:>8.2}ms {:>8.2}ms",
            r,
            rep.sim_time_ns as f64 / 1e6,
            ms(rep.breakdown.static_compute_ns),
            ms(rep.breakdown.gather_ns),
            ms(rep.breakdown.transfer_ns),
            ms(rep.breakdown.ondemand_compute_ns),
        );
        if rep.seconds() < best.1 {
            best = (r, rep.seconds());
        }
    }

    // What Eq (2) would pick automatically (K = 10%):
    let eq2 = {
        let mut gpu = Gpu::new(device);
        let _v = reserve_vertex_arrays(&mut gpu, &g);
        static_share(0.10, g.edge_bytes(), edge_budget_bytes(&gpu))
    };
    let auto = AsceticSystem::new(AsceticConfig::new(device)).run(&g, &Cc::new());
    println!(
        "\nsweep best: R = {:.1} at {:.2} ms; Eq (2) picks R = {:.2} giving {:.2} ms \
         ({:+.1}% off the sweep best)",
        best.0,
        best.1 * 1e3,
        eq2,
        auto.seconds() * 1e3,
        (auto.seconds() / best.1 - 1.0) * 100.0
    );
}
