//! Extending Ascetic with a custom vertex program.
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```
//!
//! Implements **single-source widest path** (SSWP: maximize the minimum
//! edge weight along a path — a classic network-capacity query) as a
//! [`VertexProgram`], and runs it out-of-core under Ascetic. Nothing in
//! the framework is BFS/PR-specific: any push-style monotone program works,
//! including over partial edge delivery.

use std::sync::atomic::{AtomicU32, Ordering};

use ascetic::algos::{AlgoOutput, Capabilities, EdgeSlice, VertexProgram};
use ascetic::core::{AsceticConfig, AsceticSystem, OutOfCoreSystem};
use ascetic::graph::datasets::weighted_variant;
use ascetic::graph::generators::{web_graph, WebConfig};
use ascetic::graph::{Csr, VertexId};
use ascetic::par::{atomic_max_u32, AtomicBitmap, Bitmap};
use ascetic::sim::DeviceConfig;

/// Single-source widest path: `width(v)` = the best over all paths s→v of
/// the smallest edge weight on the path. Pushes are monotone max-of-min,
/// so partial/duplicated edge delivery is harmless — exactly the contract
/// Ascetic's split regions need.
struct WidestPath {
    source: VertexId,
}

struct WpState {
    width: Vec<AtomicU32>,
    frozen: Vec<AtomicU32>,
}

impl VertexProgram for WidestPath {
    type State = WpState;

    fn name(&self) -> &'static str {
        "SSWP"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::new().with_weights()
    }

    fn new_state(&self, g: &Csr) -> WpState {
        let width: Vec<AtomicU32> = (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect();
        width[self.source as usize].store(u32::MAX, Ordering::Relaxed);
        WpState {
            width,
            frozen: (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    fn initial_frontier(&self, g: &Csr) -> Bitmap {
        let mut b = Bitmap::new(g.num_vertices());
        b.set(self.source as usize);
        b
    }

    fn compute(&self, _iter: u32, active: &Bitmap, state: &WpState) {
        for v in active.iter_ones() {
            state.frozen[v].store(state.width[v].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    fn advance_push(
        &self,
        src: VertexId,
        edges: EdgeSlice<'_>,
        state: &WpState,
        next: &AtomicBitmap,
    ) {
        let w = state.frozen[src as usize].load(Ordering::Relaxed);
        for (t, ew) in edges.iter() {
            let cand = w.min(ew);
            if atomic_max_u32(&state.width[t as usize], cand) {
                next.set(t as usize);
            }
        }
    }

    fn output(&self, state: &WpState) -> AlgoOutput {
        AlgoOutput::Labels(
            state
                .width
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
        )
    }
}

/// Straightforward in-memory reference (Bellman–Ford style fixpoint).
fn sswp_reference(g: &Csr, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut width = vec![0u32; n];
    width[source as usize] = u32::MAX;
    loop {
        let mut changed = false;
        for v in 0..n as VertexId {
            let w = width[v as usize];
            if w == 0 {
                continue;
            }
            for (&t, &ew) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
                let cand = w.min(ew);
                if cand > width[t as usize] {
                    width[t as usize] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            return width;
        }
    }
}

fn main() {
    println!("building weighted web graph ...");
    let g = weighted_variant(&web_graph(&WebConfig::new(60_000, 900_000, 11)));
    println!(
        "graph: {} vertices, {} weighted edges ({:.1} MB)",
        g.num_vertices(),
        g.num_edges(),
        g.edge_bytes() as f64 / 1e6
    );

    let mem = g.num_vertices() as u64 * 24 + g.edge_bytes() / 3;
    let system = AsceticSystem::new(AsceticConfig::new(DeviceConfig::p100(mem)));
    println!(
        "device memory: {:.1} MB (~33% of the dataset)",
        mem as f64 / 1e6
    );

    let source = 0;
    let report = system.run(&g, &WidestPath { source });
    println!(
        "\nSSWP finished: {} iterations, {:.2} ms simulated, {:.2} MB transferred",
        report.iterations,
        report.sim_time_ns as f64 / 1e6,
        report.xfer.total_bytes() as f64 / 1e6
    );

    print!("verifying against in-memory fixpoint ... ");
    let expect = sswp_reference(&g, source);
    assert_eq!(report.output, AlgoOutput::Labels(expect));
    println!("ok ✓");

    if let AlgoOutput::Labels(widths) = &report.output {
        let reachable = widths.iter().filter(|&&w| w > 0).count();
        let best = widths
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != source as usize)
            .max_by_key(|&(_, w)| w)
            .unwrap();
        println!(
            "{} vertices reachable; widest pipe from {} reaches vertex {} at width {}",
            reachable, source, best.0, best.1
        );
    }
}
